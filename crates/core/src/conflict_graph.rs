//! The conflict graph `G_k` of conflict-free `k`-coloring a hypergraph
//! `H` — the central construction of the paper (Section 2).
//!
//! > *The vertex set `V(G_k)` consists of all triples `(e, v, c)`,
//! > `e ∈ E(H)`, `v ∈ e`, `1 ≤ c ≤ k`.*
//!
//! The edge set is the union of three families (quoted from the paper,
//! with colors 0-based here):
//!
//! * `E_vertex` — `{(e,v,c), (g,v,d)}` for `c ≠ d`: a vertex may commit
//!   to at most one color;
//! * `E_edge` — `{(e,v,c), (e,u,d)}`: a hyperedge may nominate at most
//!   one unique-color witness;
//! * `E_color` — `{(e,v,c), (g,u,c)}` for **distinct** `u ≠ v` with
//!   `{u,v} ⊆ e` or `{u,v} ⊆ g`: a nominated witness's color must
//!   actually be unique within its edge. Since `v ∈ e` and `u ∈ g`
//!   always hold, the condition is equivalent to `u ∈ e` or `v ∈ g`.
//!
//!   *Faithfulness note*: the paper's set-builder does not write
//!   `u ≠ v` explicitly, and with `u = v` the condition `{u,v} ⊆ e`
//!   degenerates to the trivially-true `{v} ⊆ e`, which would make
//!   `(e,v,c)` and `(g,v,c)` adjacent and falsify Lemma 2.1 a) whenever
//!   one vertex is the unique-color witness of two hyperedges. The
//!   lemma's own proof (case `h ∈ E_color`) derives its contradiction
//!   from `u ∈ e, u ≠ v`, so distinct vertices are clearly intended;
//!   this implementation follows the proof.
//!
//! [`ConflictGraph`] materializes `G_k` as a
//! [`Graph`] with a dense triple indexing
//! (`O(1)`/`O(log |e|)` conversions both ways), retains the source
//! hypergraph, and reports the per-family edge counts that experiment
//! T1 tabulates.
//!
//! # Construction kernel
//!
//! The default builder is **output-sensitive**: instead of testing the
//! family predicates over pairs of triples, it streams each triple
//! node's neighbor row directly from hypergraph structure — the row of
//! `(e, v, c)` decomposes by the other endpoint's hyperedge block, and
//! every block's contribution is closed-form (the `E_edge` clique for
//! `e` itself, a position sweep for blocks containing `v`, the `e ∩ g`
//! wedge positions otherwise). Rows come out sorted, in node order, so
//! the kernel writes the CSR directly: total work `O(|E(G_k)| + W)`
//! with `W = Σ_v deg(v)²` the wedge count, and nothing is ever sorted,
//! deduplicated, or post-processed. Above a work threshold — or on
//! request via [`BuildStrategy::Parallel`] — contiguous block ranges
//! are sharded across `std::thread::scope` workers whose outputs
//! concatenate (row order equals node order, so concatenation *is* the
//! merge). [`BuildStrategy::Reference`] keeps the predicate-driven
//! all-pairs builder alive as the machine-checkable specification the
//! equivalence property tests compare against.

use pslocal_graph::{
    csr, BitsetGraph, Graph, HyperedgeId, Hypergraph, IndependentSet, KernelStrategy, NodeId,
};
use pslocal_telemetry::{names, Counter, Instrument, Sink, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A triple `(e, v, c)`: hyperedge, member vertex, 0-based color index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// The hyperedge.
    pub edge: HyperedgeId,
    /// A vertex of that hyperedge.
    pub vertex: NodeId,
    /// A color index in `0..k`.
    pub color: usize,
}

/// Per-family edge counts of a conflict graph.
///
/// The families overlap (e.g. `{(e,v,c),(e,v,d)}` lies in both
/// `E_vertex` and `E_edge`), so the family counts may sum to more than
/// [`ConflictGraph::edge_count`], which counts the *union*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyCounts {
    /// Edges satisfying the `E_vertex` predicate.
    pub vertex_family: usize,
    /// Edges satisfying the `E_edge` predicate.
    pub edge_family: usize,
    /// Edges satisfying the `E_color` predicate.
    pub color_family: usize,
}

/// How [`ConflictGraph::build_with_options`] materializes the edge set.
///
/// Every strategy produces the **identical** [`Graph`] (same CSR bytes)
/// — the equivalence property suite proves it; they differ only in
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStrategy {
    /// Output-sensitive kernel; shards across threads when the
    /// estimated edge count clears a threshold.
    #[default]
    Auto,
    /// Output-sensitive kernel, single-threaded.
    Serial,
    /// Output-sensitive kernel, always sharded across
    /// `std::thread::scope` workers.
    Parallel,
    /// Predicate-driven all-pairs reference: tests every pair of
    /// triples against the three family predicates. `Θ((Σ|e|·k)²)` —
    /// the executable specification, retained for equivalence tests
    /// and ablation cross-checks, far too slow for real instances.
    Reference,
}

/// Construction options for [`ConflictGraph`] — used by ablation
/// experiments and the builder-equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConflictGraphOptions {
    /// Read the paper's `E_color` set-builder **literally**, i.e. allow
    /// `u = v` (which makes `(e,v,c)` and `(g,v,c)` adjacent for any
    /// two hyperedges containing `v`). This falsifies Lemma 2.1 a)
    /// whenever one vertex witnesses two edges — the ablation
    /// experiment A2 measures exactly how often. The default (`false`)
    /// follows the lemma's proof and requires `u ≠ v`.
    pub literal_ecolor: bool,
    /// Which construction kernel to run (identical output, different
    /// cost — see [`BuildStrategy`]).
    pub strategy: BuildStrategy,
    /// Which adjacency representation the phase pipeline runs on:
    /// `Auto` (default) takes the dense bit-row route when the density
    /// heuristic says flat words beat CSR pointer chasing, `Csr` and
    /// `Bitset` force a route. The choice applies under the default
    /// [`BuildStrategy::Auto`]; the explicit CSR build strategies
    /// (`Serial` / `Parallel` / `Reference`) are equivalence and
    /// ablation knobs that pin the CSR pipeline regardless. Every route
    /// yields identical phase outputs — the bitset equivalence suite
    /// proves it.
    pub kernel: KernelStrategy,
}

impl ConflictGraphOptions {
    /// Options selecting the paper-literal `E_color` reading with the
    /// default (auto) build strategy.
    pub fn literal() -> Self {
        ConflictGraphOptions { literal_ecolor: true, ..Self::default() }
    }

    /// Options selecting a build strategy with the proof-faithful
    /// `E_color` reading.
    pub fn with_strategy(strategy: BuildStrategy) -> Self {
        ConflictGraphOptions { strategy, ..Self::default() }
    }

    /// Options selecting an adjacency kernel (dense bitset vs CSR) with
    /// the proof-faithful `E_color` reading and the default build
    /// strategy.
    pub fn with_kernel(kernel: KernelStrategy) -> Self {
        ConflictGraphOptions { kernel, ..Self::default() }
    }
}

/// The conflict graph `G_k` of conflict-free `k`-coloring `H`.
///
/// # Examples
///
/// ```
/// use pslocal_core::ConflictGraph;
/// use pslocal_graph::Hypergraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]])?;
/// let cg = ConflictGraph::build(&h, 2);
/// // |V(G_k)| = k · Σ|e| = 2 · 4.
/// assert_eq!(cg.graph().node_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// The CSR form. On the dense route this is **lazily** materialized
    /// on first [`ConflictGraph::graph`] access — the per-phase hot
    /// path (dense oracle dispatch, commit, restriction) never needs
    /// the `u32` adjacency, so pure dense runs skip it entirely.
    graph: OnceLock<Graph>,
    /// The dense bit-row form; `Some` exactly when the configured
    /// [`KernelStrategy`] resolved to the bitset route.
    bits: Option<BitsetGraph>,
    node_count: usize,
    edge_count: usize,
    hypergraph: Hypergraph,
    k: usize,
    options: ConflictGraphOptions,
    /// `base[e]` = first triple index of hyperedge `e`'s block; triples
    /// of `e` occupy `base[e] + pos(v in e)·k + c`.
    base: Vec<u32>,
}

impl ConflictGraph {
    /// Builds `G_k` for `h` with the proof-faithful `E_color` reading.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(h: &Hypergraph, k: usize) -> Self {
        Self::build_with_options(h, k, ConflictGraphOptions::default())
    }

    /// Builds `G_k` with explicit [`ConflictGraphOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build_with_options(h: &Hypergraph, k: usize, options: ConflictGraphOptions) -> Self {
        Self::build_traced(h, k, options, &Telemetry::disabled())
    }

    /// Builds `G_k` under a telemetry pipeline: a `conflict-graph` span
    /// wraps the construction, every kernel shard gets a child `shard`
    /// span with a `shard_build_ns` sample, and the finished CSR's byte
    /// footprint is attributed as `csr_bytes`. With a disabled pipeline
    /// this is exactly [`ConflictGraph::build_with_options`] — static
    /// dispatch to the null sink erases every emission site.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build_traced<S: Sink>(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        parent: &impl Instrument<S>,
    ) -> Self {
        assert!(k >= 1, "palette size k must be positive");
        let span = parent.span(names::CONFLICT_GRAPH);
        let m = h.edge_count();
        let mut base = vec![0u32; m + 1];
        for e in 0..m {
            base[e + 1] = base[e] + (h.edge_size(HyperedgeId::new(e)) * k) as u32;
        }
        let node_count = base[m] as usize;
        // The kernel resolution reuses the parallel threshold's cheap
        // edge estimate — the exact count exists only after the build.
        // Explicit CSR build strategies pin the CSR pipeline (they are
        // the equivalence/ablation knobs); the kernel choice applies
        // under the default Auto build strategy.
        let dense = matches!(options.strategy, BuildStrategy::Auto)
            && options.kernel.use_bitset(node_count, kernel::estimated_edges(h, k));
        if dense {
            let bits = kernel::build_bitset(h, k, options, &base, &span);
            let edge_count = bits.edge_count();
            span.add(Counter::CsrBytes, csr_bytes_for(node_count, edge_count));
            return ConflictGraph {
                graph: OnceLock::new(),
                bits: Some(bits),
                node_count,
                edge_count,
                hypergraph: h.clone(),
                k,
                options,
                base,
            };
        }
        let graph = match options.strategy {
            BuildStrategy::Reference => kernel::build_reference(h, k, options, &base),
            BuildStrategy::Serial => kernel::build_fast(h, k, options, &base, 1, &span),
            BuildStrategy::Parallel => {
                kernel::build_fast(h, k, options, &base, kernel::worker_count().max(2), &span)
            }
            BuildStrategy::Auto => {
                let workers = if kernel::estimated_edges(h, k) >= kernel::PARALLEL_THRESHOLD {
                    kernel::worker_count()
                } else {
                    1
                };
                kernel::build_fast(h, k, options, &base, workers, &span)
            }
        };
        span.add(Counter::CsrBytes, csr_bytes(&graph));
        let edge_count = graph.edge_count();
        ConflictGraph {
            graph: OnceLock::from(graph),
            bits: None,
            node_count,
            edge_count,
            hypergraph: h.clone(),
            k,
            options,
            base,
        }
    }

    /// The conflict graph of the residual hypergraph obtained by keeping
    /// only the hyperedges `keep` (ids of **this** graph's hypergraph,
    /// strictly increasing) — the phase-incremental step of the
    /// Theorem 1.1 reduction pipeline.
    ///
    /// Removing hyperedges removes their triple blocks and cannot
    /// create new conflicts (every family predicate depends only on the
    /// two triples' own hyperedges), so `G_k(H_i)` is exactly the
    /// induced subgraph of `G_k(H)` on the surviving blocks. The
    /// construction therefore filters the retained CSR rows in
    /// `O(Σ_{surviving} deg + |V(G_k)|)` — no predicate is re-evaluated
    /// — and produces a graph byte-identical to
    /// `ConflictGraph::build_with_options(&restricted, k, options)`,
    /// which the equivalence property suite verifies.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is not strictly increasing or contains an
    /// out-of-range hyperedge.
    pub fn restrict_to_edges(&self, keep: &[HyperedgeId]) -> Self {
        self.restrict_to_edges_in(keep, &mut csr::InducedArena::new(), &mut Vec::new())
    }

    /// [`restrict_to_edges`](Self::restrict_to_edges) reusing
    /// caller-owned scratch — the phase workspace's CSR arena and node
    /// keep-list — so the multi-phase restriction loop performs no
    /// steady-state allocation on the CSR route.
    ///
    /// On the dense route the restricted instance is rebuilt through
    /// the kernel dispatch instead: re-emitting bit rows costs about as
    /// much as gathering scattered bit columns would, and the Auto
    /// resolution re-applies to the (smaller) residual — falling back
    /// to CSR once the density heuristic stops paying. Identical output
    /// either way, by the builder equivalence.
    pub(crate) fn restrict_to_edges_in(
        &self,
        keep: &[HyperedgeId],
        arena: &mut csr::InducedArena,
        nodes: &mut Vec<NodeId>,
    ) -> Self {
        assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep set must be strictly increasing");
        let k = self.k;
        let (hypergraph, _) = self.hypergraph.restrict_edges(keep);
        if self.bits.is_some() {
            return Self::build_with_options(&hypergraph, k, self.options);
        }
        let mut base = vec![0u32; keep.len() + 1];
        nodes.clear();
        nodes.reserve(self.node_count);
        for (new_e, &old_e) in keep.iter().enumerate() {
            let (lo, hi) = (self.base[old_e.index()], self.base[old_e.index() + 1]);
            base[new_e + 1] = base[new_e] + (hi - lo);
            nodes.extend((lo..hi).map(|i| NodeId::new(i as usize)));
        }
        let graph = csr::induced_sorted_in(self.graph(), nodes, arena);
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        ConflictGraph {
            graph: OnceLock::from(graph),
            bits: None,
            node_count,
            edge_count,
            hypergraph,
            k,
            options: self.options,
            base,
        }
    }

    /// Tears down into the materialized CSR (if any), so a driver can
    /// recycle the retired phase graph's buffers into its workspace
    /// arena.
    pub(crate) fn into_graph(self) -> Option<Graph> {
        self.graph.into_inner()
    }

    /// The options the graph was built with.
    #[inline]
    pub fn options(&self) -> ConflictGraphOptions {
        self.options
    }

    /// The first triple node of hyperedge `e`'s block (the block spans
    /// `block_start(e) .. block_start(e) + |e|·k` contiguously).
    ///
    /// Because every block is an `E_edge` clique, a block never splits
    /// across connected components of `G_k`; the component of
    /// `block_start(e)` is therefore *the* component owning hyperedge
    /// `e` — the fact the component-parallel executor
    /// ([`crate::components`]) uses to apply the Lemma 2.1 delivery
    /// quota per component.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn block_start(&self, e: HyperedgeId) -> NodeId {
        NodeId::new(self.base[e.index()] as usize)
    }

    /// The simple graph `G_k` in CSR form.
    ///
    /// On the dense route the CSR is materialized **lazily** on first
    /// access (serial kernel run over the retained hypergraph) and
    /// cached; the bytes are identical to an eager build, as all build
    /// strategies produce the same CSR. The per-phase hot path never
    /// calls this in dense mode.
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| {
            let tel = Telemetry::disabled();
            let span = tel.span(names::CONFLICT_GRAPH);
            kernel::build_fast(&self.hypergraph, self.k, self.options, &self.base, 1, &span)
        })
    }

    /// The dense bit-row form of `G_k`, when the configured
    /// [`KernelStrategy`] resolved to the bitset route.
    #[inline]
    pub fn bitset(&self) -> Option<&BitsetGraph> {
        self.bits.as_ref()
    }

    /// The source hypergraph.
    #[inline]
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// The palette size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of conflict-graph vertices `k·Σ|e|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of edges of `G_k` (union of the three families).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The structural fingerprint of `G_k` — exactly
    /// [`Graph::fingerprint`] of the CSR form, computed from the bit
    /// rows in dense mode (same value by construction), so journaling
    /// and oracle memoization never force a CSR materialization.
    pub fn fingerprint(&self) -> u64 {
        match &self.bits {
            Some(bits) => bits.fingerprint(),
            None => self.graph().fingerprint(),
        }
    }

    /// Re-validates a claimed independent set against `G_k` (range
    /// check plus full adjacency re-check) on whichever representation
    /// is resident — the resilient driver's acceptance check and the
    /// oracle cache's fingerprint-collision check.
    pub fn verify_independent(&self, set: &IndependentSet) -> bool {
        if let Some(bits) = &self.bits {
            return bits.is_independent_set(set.vertices()).is_none();
        }
        let g = self.graph();
        let n = g.node_count();
        set.vertices().iter().all(|v| v.index() < n) && g.is_independent_set(set.vertices())
    }

    /// The byte footprint of the phase graph's CSR form (`u32` offsets
    /// plus both directions of every edge) — computed from the counts,
    /// so the dense route reports the same figure without materializing
    /// the CSR.
    pub fn csr_bytes(&self) -> u64 {
        csr_bytes_for(self.node_count, self.edge_count)
    }

    /// The conflict-graph node for `(e, v, c)`, or `None` if `v ∉ e` or
    /// `c ≥ k`.
    pub fn node_for(&self, e: HyperedgeId, v: NodeId, c: usize) -> Option<NodeId> {
        if c >= self.k || e.index() >= self.hypergraph.edge_count() {
            return None;
        }
        let pos = self.hypergraph.edge(e).binary_search(&v).ok()?;
        Some(NodeId::new(self.base[e.index()] as usize + pos * self.k + c))
    }

    /// The triple a conflict-graph node stands for.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn triple_of(&self, node: NodeId) -> Triple {
        let idx = node.index() as u32;
        // pslocal: allow(panic-path, "base is seeded with 0 at construction and never emptied, so last() always exists")
        assert!(idx < *self.base.last().unwrap(), "node {node} out of range");
        // Find the hyperedge block via binary search on `base`.
        let e = match self.base.binary_search(&idx) {
            Ok(exact) => {
                // `base` can contain repeated values only if some edge
                // had zero triples, which Hypergraph forbids; an exact
                // hit is the start of edge `exact`.
                exact
            }
            Err(insertion) => insertion - 1,
        };
        let offset = (idx - self.base[e]) as usize;
        let pos = offset / self.k;
        let color = offset % self.k;
        let edge = HyperedgeId::new(e);
        Triple { edge, vertex: self.hypergraph.edge(edge)[pos], color }
    }

    /// Whether the pair `{a, b}` satisfies the `E_vertex` predicate.
    pub fn in_vertex_family(&self, a: Triple, b: Triple) -> bool {
        a.vertex == b.vertex && a.color != b.color
    }

    /// Whether the pair `{a, b}` satisfies the `E_edge` predicate.
    pub fn in_edge_family(&self, a: Triple, b: Triple) -> bool {
        a.edge == b.edge
    }

    /// Whether the pair `{a, b}` satisfies the `E_color` predicate
    /// under this graph's options (distinct vertices by default — see
    /// the module-level faithfulness note).
    pub fn in_color_family(&self, a: Triple, b: Triple) -> bool {
        a.color == b.color
            && (self.options.literal_ecolor || a.vertex != b.vertex)
            && (self.hypergraph.edge_contains(a.edge, b.vertex)
                || self.hypergraph.edge_contains(b.edge, a.vertex))
    }

    /// Classifies every edge of the built graph into the (possibly
    /// several) families it belongs to.
    pub fn family_counts(&self) -> FamilyCounts {
        let mut counts = FamilyCounts { vertex_family: 0, edge_family: 0, color_family: 0 };
        for (x, y) in self.graph().edges() {
            let (a, b) = (self.triple_of(x), self.triple_of(y));
            if self.in_vertex_family(a, b) {
                counts.vertex_family += 1;
            }
            if self.in_edge_family(a, b) {
                counts.edge_family += 1;
            }
            if self.in_color_family(a, b) {
                counts.color_family += 1;
            }
        }
        counts
    }

    /// The closed-form vertex count `k · Σ_e |e|`.
    pub fn expected_node_count(h: &Hypergraph, k: usize) -> usize {
        k * h.incidence_size()
    }
}

/// The CSR byte footprint of a graph: `u32` offsets (one per node plus
/// the sentinel) and `u32` targets (both endpoints of every edge) — the
/// quantity the `csr_bytes` telemetry counter reports.
pub(crate) fn csr_bytes(g: &Graph) -> u64 {
    csr_bytes_for(g.node_count(), g.edge_count())
}

/// [`csr_bytes`] from the counts alone — what the CSR form occupies (or
/// would occupy, on the dense route where it may never materialize).
pub(crate) fn csr_bytes_for(nodes: usize, edges: usize) -> u64 {
    4 * (nodes as u64 + 1 + 2 * edges as u64)
}

/// The construction kernels behind [`ConflictGraph::build_with_options`].
///
/// The fast kernel writes the CSR **directly, row by row, already
/// sorted** — it never materializes an unordered pair list, so nothing
/// is ever sorted or deduplicated. The key observation: the neighbors
/// of a triple `a = (e, v, c)` decompose by the *other* triple's
/// hyperedge `g`, and within each block the pattern is closed-form:
///
/// * `g == e` — the whole block except `a` itself (`E_edge` clique),
///   two contiguous index ranges;
/// * `g ∋ v` — vertex `v`'s slot in `g` contributes colors `d ≠ c`
///   (`E_vertex`; all `d` under `literal_ecolor`), and every other
///   member slot contributes color `c` (`E_color` via `v ∈ g`) — one
///   ascending sweep over `g`'s positions;
/// * `g ∌ v` — exactly the members of `e ∩ g` contribute color `c`
///   (`E_color` via `u ∈ e`), read off a per-hyperedge *wedge list*
///   (the `(g, pos)` slots of `e`'s members, sorted once per `e`).
///
/// Blocks are visited in ascending `g` by merging the (sorted) slot
/// list of `v` with the (sorted) wedge list of `e`, so each row comes
/// out sorted and rows are emitted in node order — the shard *is* a
/// finished CSR fragment. Total work is `O(|E(G_k)| + W)` where
/// `W = Σ_v deg(v)²` is the wedge count. Workers shard contiguous
/// block ranges under `std::thread::scope` and the shards concatenate
/// (no merge pass: row order equals node order).
mod kernel {
    use super::ConflictGraphOptions;
    use pslocal_graph::bitset::{set_bit_range, BitsetGraph};
    use pslocal_graph::{csr, Graph, HyperedgeId, Hypergraph, NodeId};
    use pslocal_telemetry::{names, span, Histogram, Sink, Span};
    use std::ops::Range;
    use std::time::Instant;

    /// Estimated `|E(G_k)|` above which [`super::BuildStrategy::Auto`]
    /// shards the emission across threads. Below it, thread spawn and
    /// shard-merge bookkeeping cost more than they save.
    pub(super) const PARALLEL_THRESHOLD: usize = 1 << 17;

    pub(super) fn worker_count() -> usize {
        std::thread::available_parallelism().map(|p| p.get().min(8)).unwrap_or(1)
    }

    /// Cheap upper estimate of `|E(G_k)|` in `O(Σ|e|)`: the `E_edge`
    /// cliques exactly, plus a per-edge incidence bound on `E_color`
    /// (which also dominates `E_vertex`, whose pairs embed into the
    /// same slot walks).
    pub(super) fn estimated_edges(h: &Hypergraph, k: usize) -> usize {
        let mut est = 0usize;
        for e in h.edge_ids() {
            let members = h.edge(e);
            let block = members.len() * k;
            est += block * (block - 1) / 2;
            let incidence: usize = members.iter().map(|&u| h.edges_of(u).len()).sum();
            est = est.saturating_add(members.len() * incidence * k);
        }
        est
    }

    /// Flat per-vertex incidence slots: for vertex `v`,
    /// `edge[offsets[v]..offsets[v+1]]` lists the hyperedges containing
    /// `v` (ascending, because edges are scattered in id order) and
    /// `pos[..]` the position of `v` inside each — everything triple
    /// emission needs, with no per-slot binary search.
    struct SlotIndex {
        offsets: Vec<u32>,
        edge: Vec<u32>,
        pos: Vec<u32>,
    }

    impl SlotIndex {
        fn build(h: &Hypergraph) -> Self {
            let n = h.node_count();
            let mut offsets = vec![0u32; n + 1];
            for e in h.edge_ids() {
                for &v in h.edge(e) {
                    offsets[v.index() + 1] += 1;
                }
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let total = offsets[n] as usize;
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            let mut edge = vec![0u32; total];
            let mut pos = vec![0u32; total];
            for e in h.edge_ids() {
                for (p, &v) in h.edge(e).iter().enumerate() {
                    let slot = cursor[v.index()] as usize;
                    cursor[v.index()] += 1;
                    edge[slot] = e.index() as u32;
                    pos[slot] = p as u32;
                }
            }
            SlotIndex { offsets, edge, pos }
        }

        /// The (hyperedge, position) slot arrays of vertex `v`.
        #[inline]
        fn slots(&self, v: usize) -> (&[u32], &[u32]) {
            let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            (&self.edge[lo..hi], &self.pos[lo..hi])
        }
    }

    /// One shard of the streamed CSR: the rows of a contiguous range of
    /// triple blocks, in node order.
    struct RowShard {
        /// Cumulative row ends, local to the shard (one entry per row).
        row_ends: Vec<u32>,
        /// Concatenated sorted neighbor lists (absolute node ids).
        targets: Vec<NodeId>,
    }

    /// Streams the rows of the triple blocks of hyperedges in `range`.
    ///
    /// For each hyperedge `e` the *wedge list* — the `(g, pos-in-g)`
    /// slots of `e`'s members with `g ≠ e`, sorted — is built once, and
    /// every row of `e`'s block merges it with the slot list of the
    /// row's vertex, emitting each neighbor block's closed-form pattern
    /// in ascending order (see the module docs). Rows come out sorted
    /// and in node order, so the shard *is* a finished CSR fragment —
    /// nothing is ever sorted, deduplicated, or post-processed.
    fn emit_blocks(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        base: &[u32],
        idx: &SlotIndex,
        range: Range<usize>,
    ) -> RowShard {
        let first = base[range.start] as usize;
        let row_count = base[range.end] as usize - first;
        let mut row_ends: Vec<u32> = Vec::with_capacity(row_count);
        let mut wedges: Vec<(u32, u32)> = Vec::new();
        // Exact-capacity count pass: one mini-merge per (e, v) — every
        // block's contribution to a row is closed-form, and the k rows
        // of a (e, v) slot all have the same length — so `targets`
        // never reallocates during emission.
        let mut total = 0usize;
        for e in range.clone() {
            build_wedges(h, idx, e, &mut wedges);
            let members = h.edge(HyperedgeId::new(e));
            for &v in members {
                total += k * row_len(
                    e,
                    k,
                    options.literal_ecolor,
                    base,
                    idx.slots(v.index()).0,
                    &wedges,
                );
            }
        }
        let mut targets: Vec<NodeId> = Vec::with_capacity(total);
        let kw = k as u32;
        for e in range {
            build_wedges(h, idx, e, &mut wedges);
            let members = h.edge(HyperedgeId::new(e));
            for (pv, &v) in members.iter().enumerate() {
                let vslots = idx.slots(v.index());
                for c in 0..kw {
                    let a = base[e] + pv as u32 * kw + c;
                    emit_row(
                        a,
                        e,
                        c,
                        kw,
                        options.literal_ecolor,
                        base,
                        vslots,
                        &wedges,
                        &mut targets,
                    );
                    row_ends.push(targets.len() as u32);
                }
            }
        }
        debug_assert_eq!(targets.len(), total);
        RowShard { row_ends, targets }
    }

    /// Collects hyperedge `e`'s wedge list: the `(g, pos-in-g)` slots of
    /// its members with `g ≠ e`, sorted (so entries group by `g`, with
    /// positions ascending within each group).
    fn build_wedges(h: &Hypergraph, idx: &SlotIndex, e: usize, wedges: &mut Vec<(u32, u32)>) {
        wedges.clear();
        for &u in h.edge(HyperedgeId::new(e)) {
            let (g_edges, g_pos) = idx.slots(u.index());
            for (s, &g) in g_edges.iter().enumerate() {
                if g as usize != e {
                    wedges.push((g, g_pos[s]));
                }
            }
        }
        wedges.sort_unstable();
    }

    /// The length of each of the `k` rows of slot `(e, v)` — the same
    /// closed-form merge as [`emit_row`], summing block contributions
    /// instead of writing them.
    fn row_len(
        e: usize,
        k: usize,
        literal: bool,
        base: &[u32],
        vg: &[u32],
        wedges: &[(u32, u32)],
    ) -> usize {
        let mut len = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < vg.len() || j < wedges.len() {
            let gi = if i < vg.len() { vg[i] } else { u32::MAX };
            let gj = if j < wedges.len() { wedges[j].0 } else { u32::MAX };
            if gi <= gj {
                while j < wedges.len() && wedges[j].0 == gi {
                    j += 1;
                }
                let g = gi as usize;
                let block = (base[g + 1] - base[g]) as usize;
                len += if g == e { block - 1 } else { block / k + k - 2 + literal as usize };
                i += 1;
            } else {
                while j < wedges.len() && wedges[j].0 == gj {
                    len += 1;
                    j += 1;
                }
            }
        }
        len
    }

    /// Writes the sorted neighbor row of triple node `a = (e, ·, c)` to
    /// `targets`. Every emission arm is an exact-length `extend` over a
    /// range or slice in pure `u32` arithmetic, so the row streams out
    /// without per-element capacity or range checks.
    #[allow(clippy::too_many_arguments)]
    fn emit_row(
        a: u32,
        e: usize,
        c: u32,
        k: u32,
        literal: bool,
        base: &[u32],
        (vg, vp): (&[u32], &[u32]),
        wedges: &[(u32, u32)],
        targets: &mut Vec<NodeId>,
    ) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < vg.len() || j < wedges.len() {
            let gi = if i < vg.len() { vg[i] } else { u32::MAX };
            let gj = if j < wedges.len() { wedges[j].0 } else { u32::MAX };
            if gi <= gj {
                // A block containing the row's vertex (possibly e
                // itself). Its wedge entries, if any, are subsumed:
                // v ∈ g satisfies the E_color predicate for *every*
                // member of g.
                while j < wedges.len() && wedges[j].0 == gi {
                    j += 1;
                }
                let g = gi as usize;
                let gbase = base[g];
                if g == e {
                    targets.extend((gbase..a).map(NodeId::from));
                    targets.extend((a + 1..base[g + 1]).map(NodeId::from));
                } else {
                    let pos = vp[i];
                    let slot = gbase + pos * k;
                    targets.extend((0..pos).map(|pu| NodeId::from(gbase + pu * k + c)));
                    if literal {
                        targets.extend((slot..slot + k).map(NodeId::from));
                    } else {
                        targets.extend((slot..slot + c).map(NodeId::from));
                        targets.extend((slot + c + 1..slot + k).map(NodeId::from));
                    }
                    let size = (base[g + 1] - gbase) / k;
                    targets.extend((pos + 1..size).map(|pu| NodeId::from(gbase + pu * k + c)));
                }
                i += 1;
            } else {
                // A block not containing the row's vertex: only the
                // members of e ∩ g conflict, at the row's own color.
                let gbase = base[gj as usize];
                let run = j;
                while j < wedges.len() && wedges[j].0 == gj {
                    j += 1;
                }
                targets
                    .extend(wedges[run..j].iter().map(|&(_, pu)| NodeId::from(gbase + pu * k + c)));
            }
        }
    }

    /// Splits `0..m` into at most `parts` contiguous ranges of roughly
    /// equal squared-block-size weight (the clique term dominates each
    /// block's emission cost).
    fn balanced_ranges(base: &[u32], m: usize, parts: usize) -> Vec<Range<usize>> {
        let weight = |e: usize| {
            let b = (base[e + 1] - base[e]) as u64;
            b * b
        };
        let total: u64 = (0..m).map(weight).sum();
        let mut ranges = Vec::with_capacity(parts);
        let (mut start, mut acc) = (0usize, 0u64);
        for e in 0..m {
            acc += weight(e);
            if acc * parts as u64 >= total * (ranges.len() as u64 + 1) {
                ranges.push(start..e + 1);
                start = e + 1;
            }
        }
        if start < m {
            ranges.push(start..m);
        }
        ranges
    }

    /// The output-sensitive kernel: slot-index once, stream every block
    /// row in sorted node order, concatenate. With `workers > 1`,
    /// contiguous block ranges run under `std::thread::scope`; because
    /// rows are emitted in node order, shard concatenation **is** the
    /// merge — identical output regardless of `workers`.
    pub(super) fn build_fast<S: Sink>(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        base: &[u32],
        workers: usize,
        parent: &Span<'_, S>,
    ) -> Graph {
        let idx = SlotIndex::build(h);
        let m = h.edge_count();
        let node_count = base[m] as usize;
        let workers = workers.clamp(1, m.max(1));
        if workers == 1 {
            // Single shard: the streamed arrays *are* the CSR — move
            // them, prepending the zero offset.
            let shard = timed_shard(h, k, options, base, &idx, 0..m, parent, 0);
            let mut offsets = Vec::with_capacity(node_count + 1);
            offsets.push(0u32);
            offsets.extend_from_slice(&shard.row_ends);
            return csr::from_raw_parts(offsets, shard.targets);
        }
        let shards: Vec<RowShard> = {
            let idx = &idx;
            std::thread::scope(|s| {
                let handles: Vec<_> = balanced_ranges(base, m, workers)
                    .into_iter()
                    .enumerate()
                    .map(|(i, range)| {
                        s.spawn(move || timed_shard(h, k, options, base, idx, range, parent, i))
                    })
                    .collect();
                // pslocal: allow(panic-path, "shard workers run pure array code with no panic paths of their own; a panicking worker is a kernel bug that must surface, not yield a truncated kernel")
                handles.into_iter().map(|j| j.join().expect("kernel worker panicked")).collect()
            })
        };
        let total_targets: usize = shards.iter().map(|s| s.targets.len()).sum();
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0u32);
        let mut targets = Vec::with_capacity(total_targets);
        for shard in shards {
            let shift = targets.len() as u32;
            offsets.extend(shard.row_ends.iter().map(|&end| end + shift));
            targets.extend_from_slice(&shard.targets);
        }
        debug_assert_eq!(offsets.len(), node_count + 1);
        csr::from_raw_parts(offsets, targets)
    }

    /// Runs [`emit_blocks`] for one shard under a `shard` span (child
    /// of the build span), sampling its wall time as `shard_build_ns`.
    /// The timing probe is gated on `S::ENABLED`, so the disabled
    /// pipeline never touches the clock.
    #[allow(clippy::too_many_arguments)]
    fn timed_shard<S: Sink>(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        base: &[u32],
        idx: &SlotIndex,
        range: Range<usize>,
        parent: &Span<'_, S>,
        shard_index: usize,
    ) -> RowShard {
        let shard_span = span!(parent, names::SHARD, shard_index);
        let t0 = S::ENABLED.then(Instant::now);
        let shard = emit_blocks(h, k, options, base, idx, range);
        if let Some(t0) = t0 {
            shard_span.sample(Histogram::ShardBuildNs, t0.elapsed().as_nanos() as u64);
        }
        shard
    }

    /// The dense-kernel twin of the streamed CSR build: the same
    /// closed-form per-block merge as [`emit_row`], but each row is
    /// written as a **bit row**. Contiguous neighbor ranges — the
    /// `E_edge` clique halves and the `E_vertex` color slot runs —
    /// become masked word fills ([`set_bit_range`]); the position
    /// sweeps and wedge hits set single bits. The resulting
    /// [`BitsetGraph`] is exactly `to_bitset()` of the CSR the other
    /// kernels emit (checked by the bitset equivalence suite, and in
    /// debug builds by `from_raw_parts`'s popcount re-check).
    ///
    /// Serial by design: the dense route only fires for graphs of at
    /// most [`pslocal_graph::bitset::BITSET_MAX_NODES`] nodes, where
    /// one pass beats thread spawn-and-join.
    pub(super) fn build_bitset<S: Sink>(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        base: &[u32],
        parent: &Span<'_, S>,
    ) -> BitsetGraph {
        let shard_span = span!(parent, names::SHARD, 0);
        let t0 = S::ENABLED.then(Instant::now);
        let idx = SlotIndex::build(h);
        let m = h.edge_count();
        let n = base[m] as usize;
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut wedges: Vec<(u32, u32)> = Vec::new();
        // Color-0 template of the current (e, v) slot plus the slot
        // bases of the other blocks containing `v` — shared by all k
        // rows of the slot (see `fill_slot_template`).
        let mut template = vec![0u64; words];
        let mut self_slots: Vec<u32> = Vec::new();
        let kw = k as u32;
        for e in 0..m {
            build_wedges(h, &idx, e, &mut wedges);
            let members = h.edge(HyperedgeId::new(e));
            for (pv, &v) in members.iter().enumerate() {
                let vslots = idx.slots(v.index());
                // All k rows of a (e, v) slot share one length.
                let len = row_len(e, k, options.literal_ecolor, base, vslots.0, &wedges) as u32;
                fill_slot_template(e, kw, base, vslots, &wedges, &mut template, &mut self_slots);
                for c in 0..kw {
                    let a = base[e] + pv as u32 * kw + c;
                    let row = &mut rows[a as usize * words..(a as usize + 1) * words];
                    // Sweep and wedge targets: the template shifted from
                    // color 0 to color c, word by word.
                    if c == 0 {
                        for (rw, &tw) in row.iter_mut().zip(&template) {
                            *rw |= tw;
                        }
                    } else {
                        let mut carry = 0u64;
                        for (rw, &tw) in row.iter_mut().zip(&template) {
                            *rw |= (tw << c) | carry;
                            carry = tw >> (64 - c);
                        }
                    }
                    // E_edge: the block clique minus `a` itself.
                    set_bit_range(row, base[e], a);
                    set_bit_range(row, a + 1, base[e + 1]);
                    // E_vertex: v's own slot in every other block
                    // containing it — all other colors, plus color c
                    // itself under the literal reading.
                    for &slot in &self_slots {
                        if options.literal_ecolor {
                            set_bit_range(row, slot, slot + kw);
                        } else {
                            set_bit_range(row, slot, slot + c);
                            set_bit_range(row, slot + c + 1, slot + kw);
                        }
                    }
                    let prev = *offsets.last().expect("seeded with 0"); // pslocal: allow(panic-path, "offsets is pushed 0 before the loop, so last() always exists")
                    offsets.push(prev + len);
                }
            }
        }
        if let Some(t0) = t0 {
            shard_span.sample(Histogram::ShardBuildNs, t0.elapsed().as_nanos() as u64);
        }
        BitsetGraph::from_raw_parts(n, rows, offsets)
    }

    /// [`emit_row`]'s sweep and wedge arms at **color 0**, written once
    /// per `(e, v)` slot: bit `gbase + pu·k` for every other member of
    /// every other block containing `v`, and for every wedge position.
    /// Adding `c` to each target is a left shift of the whole buffer,
    /// so the k rows of a slot share this single merge — `build_bitset`
    /// ORs `template << c` into row `c` and finishes with the masked
    /// fills for the `E_edge` clique and `v`'s own slots (whose shapes
    /// depend on `a` and `c`, collected here in `self_slots`).
    fn fill_slot_template(
        e: usize,
        k: u32,
        base: &[u32],
        (vg, vp): (&[u32], &[u32]),
        wedges: &[(u32, u32)],
        template: &mut [u64],
        self_slots: &mut Vec<u32>,
    ) {
        #[inline]
        fn set(row: &mut [u64], b: u32) {
            row[(b / 64) as usize] |= 1u64 << (b % 64);
        }
        template.fill(0);
        self_slots.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < vg.len() || j < wedges.len() {
            let gi = if i < vg.len() { vg[i] } else { u32::MAX };
            let gj = if j < wedges.len() { wedges[j].0 } else { u32::MAX };
            if gi <= gj {
                // Wedges into a block containing `v` are subsumed by
                // the member sweep below.
                while j < wedges.len() && wedges[j].0 == gi {
                    j += 1;
                }
                let g = gi as usize;
                let gbase = base[g];
                if g != e {
                    let pos = vp[i];
                    self_slots.push(gbase + pos * k);
                    for pu in 0..pos {
                        set(template, gbase + pu * k);
                    }
                    let size = (base[g + 1] - gbase) / k;
                    for pu in pos + 1..size {
                        set(template, gbase + pu * k);
                    }
                }
                i += 1;
            } else {
                let gbase = base[gj as usize];
                while j < wedges.len() && wedges[j].0 == gj {
                    set(template, gbase + wedges[j].1 * k);
                    j += 1;
                }
            }
        }
    }

    /// The all-pairs reference: materialize every triple, test every
    /// pair against the three family predicates verbatim. This is the
    /// executable form of the paper's set-builder definitions and the
    /// ground truth of the equivalence property suite.
    pub(super) fn build_reference(
        h: &Hypergraph,
        k: usize,
        options: ConflictGraphOptions,
        base: &[u32],
    ) -> Graph {
        let node_count = base[h.edge_count()] as usize;
        let mut triples = Vec::with_capacity(node_count);
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                for c in 0..k {
                    triples.push((e, v, c));
                }
            }
        }
        let mut pairs = Vec::new();
        for i in 0..node_count {
            let (e, v, c) = triples[i];
            for (j, &(g, u, d)) in triples.iter().enumerate().skip(i + 1) {
                let vertex_family = v == u && c != d;
                let edge_family = e == g;
                let color_family = c == d
                    && (options.literal_ecolor || v != u)
                    && (h.edge_contains(e, u) || h.edge_contains(g, v));
                if vertex_family || edge_family || color_family {
                    pairs.push((NodeId::new(i), NodeId::new(j)));
                }
            }
        }
        csr::from_pairs(node_count, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use rand::SeedableRng;

    fn small() -> (Hypergraph, ConflictGraph) {
        let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        (h, cg)
    }

    #[test]
    fn vertex_count_matches_closed_form() {
        let (h, cg) = small();
        assert_eq!(cg.graph().node_count(), ConflictGraph::expected_node_count(&h, 2));
        assert_eq!(cg.graph().node_count(), 12);
    }

    #[test]
    fn triple_indexing_round_trips() {
        let (h, cg) = small();
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                for c in 0..cg.k() {
                    let node = cg.node_for(e, v, c).expect("valid triple");
                    let t = cg.triple_of(node);
                    assert_eq!(t, Triple { edge: e, vertex: v, color: c });
                }
            }
        }
    }

    #[test]
    fn node_for_rejects_invalid_triples() {
        let (_, cg) = small();
        // vertex 3 is not in edge 0.
        assert_eq!(cg.node_for(HyperedgeId::new(0), NodeId::new(3), 0), None);
        // color out of palette.
        assert_eq!(cg.node_for(HyperedgeId::new(0), NodeId::new(0), 2), None);
        // edge out of range.
        assert_eq!(cg.node_for(HyperedgeId::new(9), NodeId::new(0), 0), None);
    }

    #[test]
    fn every_edge_belongs_to_some_family_and_vice_versa() {
        let (_, cg) = small();
        for (x, y) in cg.graph().edges() {
            let (a, b) = (cg.triple_of(x), cg.triple_of(y));
            assert!(
                cg.in_vertex_family(a, b) || cg.in_edge_family(a, b) || cg.in_color_family(a, b),
                "edge ({a:?}, {b:?}) in no family"
            );
        }
        // Conversely: every pair satisfying a family predicate is an
        // edge of the built graph.
        let n = cg.graph().node_count();
        for i in 0..n {
            for j in (i + 1)..n {
                let (x, y) = (NodeId::new(i), NodeId::new(j));
                let (a, b) = (cg.triple_of(x), cg.triple_of(y));
                let should = cg.in_vertex_family(a, b)
                    || cg.in_edge_family(a, b)
                    || cg.in_color_family(a, b);
                assert_eq!(
                    cg.graph().has_edge(x, y),
                    should,
                    "adjacency mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn family_counts_are_positive_and_consistent() {
        let (_, cg) = small();
        let counts = cg.family_counts();
        assert!(counts.vertex_family > 0);
        assert!(counts.edge_family > 0);
        assert!(counts.color_family > 0);
        // Union ≤ sum of families (overlap allowed).
        assert!(cg.edge_count() <= counts.vertex_family + counts.edge_family + counts.color_family);
        // Every counted family edge is a real edge, so each family count
        // is at most the union size.
        assert!(counts.vertex_family <= cg.edge_count());
        assert!(counts.edge_family <= cg.edge_count());
        assert!(counts.color_family <= cg.edge_count());
    }

    #[test]
    fn edge_family_makes_blocks_cliques() {
        let (h, cg) = small();
        // All triples of hyperedge 0 must form a clique (E_edge).
        let e = HyperedgeId::new(0);
        let block: Vec<NodeId> = h
            .edge(e)
            .iter()
            .flat_map(|&v| (0..2).map(move |c| (v, c)))
            .map(|(v, c)| cg.node_for(e, v, c).unwrap())
            .collect();
        assert!(pslocal_graph::algo::is_clique(cg.graph(), &block));
        assert_eq!(block.len(), 6);
    }

    #[test]
    fn k1_conflict_graph_has_no_vertex_family() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 1);
        let counts = cg.family_counts();
        assert_eq!(counts.vertex_family, 0, "k = 1 leaves no c ≠ d pairs");
        assert!(counts.edge_family > 0);
    }

    #[test]
    fn same_vertex_same_color_different_edges_are_not_adjacent() {
        // (e,v,c) and (g,v,c) with e ≠ g: NOT adjacent (the u ≠ v
        // reading of E_color — otherwise one vertex could never witness
        // two edges and Lemma 2.1 a) would fail; see module docs).
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        let a = cg.node_for(HyperedgeId::new(0), NodeId::new(0), 0).unwrap();
        let b = cg.node_for(HyperedgeId::new(1), NodeId::new(0), 0).unwrap();
        assert!(!cg.graph().has_edge(a, b));
        let ta = cg.triple_of(a);
        let tb = cg.triple_of(b);
        assert!(!cg.in_color_family(ta, tb));
        assert!(!cg.in_vertex_family(ta, tb));
        // With different colors the same pair IS adjacent via E_vertex.
        let d = cg.node_for(HyperedgeId::new(1), NodeId::new(0), 1).unwrap();
        assert!(cg.graph().has_edge(a, d));
    }

    #[test]
    fn scales_on_planted_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(40, 20, 3));
        let cg = ConflictGraph::build(&inst.hypergraph, 3);
        assert_eq!(
            cg.graph().node_count(),
            ConflictGraph::expected_node_count(&inst.hypergraph, 3)
        );
        // Spot-check the round trip on a sample of nodes.
        for i in (0..cg.graph().node_count()).step_by(7) {
            let t = cg.triple_of(NodeId::new(i));
            assert_eq!(cg.node_for(t.edge, t.vertex, t.color), Some(NodeId::new(i)));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]).unwrap();
        let _ = ConflictGraph::build(&h, 0);
    }

    #[test]
    fn literal_ecolor_option_adds_same_vertex_edges() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 2]]).unwrap();
        let strict = ConflictGraph::build(&h, 2);
        let literal = ConflictGraph::build_with_options(&h, 2, ConflictGraphOptions::literal());
        assert!(!strict.options().literal_ecolor);
        assert!(literal.options().literal_ecolor);
        let a = literal.node_for(HyperedgeId::new(0), NodeId::new(0), 0).unwrap();
        let b = literal.node_for(HyperedgeId::new(1), NodeId::new(0), 0).unwrap();
        assert!(literal.graph().has_edge(a, b), "literal reading connects (e,v,c)-(g,v,c)");
        assert!(!strict.graph().has_edge(a, b));
        assert!(literal.edge_count() > strict.edge_count());
        // The predicate agrees with the built adjacency in both modes.
        let (ta, tb) = (literal.triple_of(a), literal.triple_of(b));
        assert!(literal.in_color_family(ta, tb));
        assert!(!strict.in_color_family(ta, tb));
    }
}
