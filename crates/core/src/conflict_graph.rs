//! The conflict graph `G_k` of conflict-free `k`-coloring a hypergraph
//! `H` — the central construction of the paper (Section 2).
//!
//! > *The vertex set `V(G_k)` consists of all triples `(e, v, c)`,
//! > `e ∈ E(H)`, `v ∈ e`, `1 ≤ c ≤ k`.*
//!
//! The edge set is the union of three families (quoted from the paper,
//! with colors 0-based here):
//!
//! * `E_vertex` — `{(e,v,c), (g,v,d)}` for `c ≠ d`: a vertex may commit
//!   to at most one color;
//! * `E_edge` — `{(e,v,c), (e,u,d)}`: a hyperedge may nominate at most
//!   one unique-color witness;
//! * `E_color` — `{(e,v,c), (g,u,c)}` for **distinct** `u ≠ v` with
//!   `{u,v} ⊆ e` or `{u,v} ⊆ g`: a nominated witness's color must
//!   actually be unique within its edge. Since `v ∈ e` and `u ∈ g`
//!   always hold, the condition is equivalent to `u ∈ e` or `v ∈ g`.
//!
//!   *Faithfulness note*: the paper's set-builder does not write
//!   `u ≠ v` explicitly, and with `u = v` the condition `{u,v} ⊆ e`
//!   degenerates to the trivially-true `{v} ⊆ e`, which would make
//!   `(e,v,c)` and `(g,v,c)` adjacent and falsify Lemma 2.1 a) whenever
//!   one vertex is the unique-color witness of two hyperedges. The
//!   lemma's own proof (case `h ∈ E_color`) derives its contradiction
//!   from `u ∈ e, u ≠ v`, so distinct vertices are clearly intended;
//!   this implementation follows the proof.
//!
//! [`ConflictGraph`] materializes `G_k` as a
//! [`Graph`](pslocal_graph::Graph) with a dense triple indexing
//! (`O(1)`/`O(log |e|)` conversions both ways), retains the source
//! hypergraph, and reports the per-family edge counts that experiment
//! T1 tabulates.

use pslocal_graph::{Graph, GraphBuilder, HyperedgeId, Hypergraph, NodeId};
use serde::{Deserialize, Serialize};

/// A triple `(e, v, c)`: hyperedge, member vertex, 0-based color index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// The hyperedge.
    pub edge: HyperedgeId,
    /// A vertex of that hyperedge.
    pub vertex: NodeId,
    /// A color index in `0..k`.
    pub color: usize,
}

/// Per-family edge counts of a conflict graph.
///
/// The families overlap (e.g. `{(e,v,c),(e,v,d)}` lies in both
/// `E_vertex` and `E_edge`), so the family counts may sum to more than
/// [`ConflictGraph::edge_count`], which counts the *union*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyCounts {
    /// Edges satisfying the `E_vertex` predicate.
    pub vertex_family: usize,
    /// Edges satisfying the `E_edge` predicate.
    pub edge_family: usize,
    /// Edges satisfying the `E_color` predicate.
    pub color_family: usize,
}

/// Construction options for [`ConflictGraph`] — used by ablation
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConflictGraphOptions {
    /// Read the paper's `E_color` set-builder **literally**, i.e. allow
    /// `u = v` (which makes `(e,v,c)` and `(g,v,c)` adjacent for any
    /// two hyperedges containing `v`). This falsifies Lemma 2.1 a)
    /// whenever one vertex witnesses two edges — the ablation
    /// experiment A2 measures exactly how often. The default (`false`)
    /// follows the lemma's proof and requires `u ≠ v`.
    pub literal_ecolor: bool,
}

/// The conflict graph `G_k` of conflict-free `k`-coloring `H`.
///
/// # Examples
///
/// ```
/// use pslocal_core::ConflictGraph;
/// use pslocal_graph::Hypergraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]])?;
/// let cg = ConflictGraph::build(&h, 2);
/// // |V(G_k)| = k · Σ|e| = 2 · 4.
/// assert_eq!(cg.graph().node_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    graph: Graph,
    hypergraph: Hypergraph,
    k: usize,
    options: ConflictGraphOptions,
    /// `base[e]` = first triple index of hyperedge `e`'s block; triples
    /// of `e` occupy `base[e] + pos(v in e)·k + c`.
    base: Vec<u32>,
}

impl ConflictGraph {
    /// Builds `G_k` for `h` with the proof-faithful `E_color` reading.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(h: &Hypergraph, k: usize) -> Self {
        Self::build_with_options(h, k, ConflictGraphOptions::default())
    }

    /// Builds `G_k` with explicit [`ConflictGraphOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build_with_options(h: &Hypergraph, k: usize, options: ConflictGraphOptions) -> Self {
        assert!(k >= 1, "palette size k must be positive");
        let m = h.edge_count();
        let mut base = vec![0u32; m + 1];
        for e in 0..m {
            base[e + 1] = base[e] + (h.edge_size(HyperedgeId::new(e)) * k) as u32;
        }
        let node_count = base[m] as usize;
        let mut builder = GraphBuilder::new(node_count);

        let triple = |e: HyperedgeId, pos: usize, c: usize| -> NodeId {
            NodeId::new(base[e.index()] as usize + pos * k + c)
        };

        // E_vertex: same vertex, different colors, any edge pair.
        // For each vertex v, enumerate its (edge, position) slots.
        for v in h.nodes() {
            let slots: Vec<(HyperedgeId, usize)> = h
                .edges_of(v)
                .iter()
                .map(|&e| {
                    // Invariant, not a fallible path: `edges_of(v)`
                    // lists exactly the edges whose sorted member list
                    // contains v, so the search always hits.
                    let pos = h.edge(e).binary_search(&v).expect("incidence is consistent");
                    (e, pos)
                })
                .collect();
            for (i, &(e, pe)) in slots.iter().enumerate() {
                for &(g, pg) in &slots[i..] {
                    for c in 0..k {
                        for d in 0..k {
                            if c == d {
                                continue;
                            }
                            let a = triple(e, pe, c);
                            let b = triple(g, pg, d);
                            if a != b {
                                builder.add_edge(a, b);
                            }
                        }
                    }
                }
            }
        }

        // E_edge: all pairs of triples within one hyperedge's block.
        for e in h.edge_ids() {
            let block = h.edge_size(e) * k;
            let start = base[e.index()] as usize;
            for i in 0..block {
                for j in (i + 1)..block {
                    builder.add_edge(NodeId::new(start + i), NodeId::new(start + j));
                }
            }
        }

        // E_color: (e,v,c) ~ (g,u,c) when u ∈ e and u ≠ v (the v ∈ g
        // case follows by symmetry of the enumeration).
        for e in h.edge_ids() {
            let members = h.edge(e);
            for (pv, &v) in members.iter().enumerate() {
                for &u in members {
                    if u == v && !options.literal_ecolor {
                        continue;
                    }
                    for &g in h.edges_of(u) {
                        // Invariant: u ∈ g by definition of `edges_of`.
                        let pu_in_g = h.edge(g).binary_search(&u).expect("incidence is consistent");
                        for c in 0..k {
                            let a = triple(e, pv, c);
                            let b = triple(g, pu_in_g, c);
                            if a != b {
                                builder.add_edge(a, b);
                            }
                        }
                    }
                }
            }
        }

        ConflictGraph { graph: builder.build(), hypergraph: h.clone(), k, options, base }
    }

    /// The options the graph was built with.
    #[inline]
    pub fn options(&self) -> ConflictGraphOptions {
        self.options
    }

    /// The materialized simple graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The source hypergraph.
    #[inline]
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// The palette size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of edges of `G_k` (union of the three families).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The conflict-graph node for `(e, v, c)`, or `None` if `v ∉ e` or
    /// `c ≥ k`.
    pub fn node_for(&self, e: HyperedgeId, v: NodeId, c: usize) -> Option<NodeId> {
        if c >= self.k || e.index() >= self.hypergraph.edge_count() {
            return None;
        }
        let pos = self.hypergraph.edge(e).binary_search(&v).ok()?;
        Some(NodeId::new(self.base[e.index()] as usize + pos * self.k + c))
    }

    /// The triple a conflict-graph node stands for.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn triple_of(&self, node: NodeId) -> Triple {
        let idx = node.index() as u32;
        assert!(idx < *self.base.last().unwrap(), "node {node} out of range");
        // Find the hyperedge block via binary search on `base`.
        let e = match self.base.binary_search(&idx) {
            Ok(exact) => {
                // `base` can contain repeated values only if some edge
                // had zero triples, which Hypergraph forbids; an exact
                // hit is the start of edge `exact`.
                exact
            }
            Err(insertion) => insertion - 1,
        };
        let offset = (idx - self.base[e]) as usize;
        let pos = offset / self.k;
        let color = offset % self.k;
        let edge = HyperedgeId::new(e);
        Triple { edge, vertex: self.hypergraph.edge(edge)[pos], color }
    }

    /// Whether the pair `{a, b}` satisfies the `E_vertex` predicate.
    pub fn in_vertex_family(&self, a: Triple, b: Triple) -> bool {
        a.vertex == b.vertex && a.color != b.color
    }

    /// Whether the pair `{a, b}` satisfies the `E_edge` predicate.
    pub fn in_edge_family(&self, a: Triple, b: Triple) -> bool {
        a.edge == b.edge
    }

    /// Whether the pair `{a, b}` satisfies the `E_color` predicate
    /// under this graph's options (distinct vertices by default — see
    /// the module-level faithfulness note).
    pub fn in_color_family(&self, a: Triple, b: Triple) -> bool {
        a.color == b.color
            && (self.options.literal_ecolor || a.vertex != b.vertex)
            && (self.hypergraph.edge_contains(a.edge, b.vertex)
                || self.hypergraph.edge_contains(b.edge, a.vertex))
    }

    /// Classifies every edge of the built graph into the (possibly
    /// several) families it belongs to.
    pub fn family_counts(&self) -> FamilyCounts {
        let mut counts = FamilyCounts { vertex_family: 0, edge_family: 0, color_family: 0 };
        for (x, y) in self.graph.edges() {
            let (a, b) = (self.triple_of(x), self.triple_of(y));
            if self.in_vertex_family(a, b) {
                counts.vertex_family += 1;
            }
            if self.in_edge_family(a, b) {
                counts.edge_family += 1;
            }
            if self.in_color_family(a, b) {
                counts.color_family += 1;
            }
        }
        counts
    }

    /// The closed-form vertex count `k · Σ_e |e|`.
    pub fn expected_node_count(h: &Hypergraph, k: usize) -> usize {
        k * h.incidence_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use rand::SeedableRng;

    fn small() -> (Hypergraph, ConflictGraph) {
        let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        (h, cg)
    }

    #[test]
    fn vertex_count_matches_closed_form() {
        let (h, cg) = small();
        assert_eq!(cg.graph().node_count(), ConflictGraph::expected_node_count(&h, 2));
        assert_eq!(cg.graph().node_count(), 12);
    }

    #[test]
    fn triple_indexing_round_trips() {
        let (h, cg) = small();
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                for c in 0..cg.k() {
                    let node = cg.node_for(e, v, c).expect("valid triple");
                    let t = cg.triple_of(node);
                    assert_eq!(t, Triple { edge: e, vertex: v, color: c });
                }
            }
        }
    }

    #[test]
    fn node_for_rejects_invalid_triples() {
        let (_, cg) = small();
        // vertex 3 is not in edge 0.
        assert_eq!(cg.node_for(HyperedgeId::new(0), NodeId::new(3), 0), None);
        // color out of palette.
        assert_eq!(cg.node_for(HyperedgeId::new(0), NodeId::new(0), 2), None);
        // edge out of range.
        assert_eq!(cg.node_for(HyperedgeId::new(9), NodeId::new(0), 0), None);
    }

    #[test]
    fn every_edge_belongs_to_some_family_and_vice_versa() {
        let (_, cg) = small();
        for (x, y) in cg.graph().edges() {
            let (a, b) = (cg.triple_of(x), cg.triple_of(y));
            assert!(
                cg.in_vertex_family(a, b) || cg.in_edge_family(a, b) || cg.in_color_family(a, b),
                "edge ({a:?}, {b:?}) in no family"
            );
        }
        // Conversely: every pair satisfying a family predicate is an
        // edge of the built graph.
        let n = cg.graph().node_count();
        for i in 0..n {
            for j in (i + 1)..n {
                let (x, y) = (NodeId::new(i), NodeId::new(j));
                let (a, b) = (cg.triple_of(x), cg.triple_of(y));
                let should = cg.in_vertex_family(a, b)
                    || cg.in_edge_family(a, b)
                    || cg.in_color_family(a, b);
                assert_eq!(
                    cg.graph().has_edge(x, y),
                    should,
                    "adjacency mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn family_counts_are_positive_and_consistent() {
        let (_, cg) = small();
        let counts = cg.family_counts();
        assert!(counts.vertex_family > 0);
        assert!(counts.edge_family > 0);
        assert!(counts.color_family > 0);
        // Union ≤ sum of families (overlap allowed).
        assert!(cg.edge_count() <= counts.vertex_family + counts.edge_family + counts.color_family);
        // Every counted family edge is a real edge, so each family count
        // is at most the union size.
        assert!(counts.vertex_family <= cg.edge_count());
        assert!(counts.edge_family <= cg.edge_count());
        assert!(counts.color_family <= cg.edge_count());
    }

    #[test]
    fn edge_family_makes_blocks_cliques() {
        let (h, cg) = small();
        // All triples of hyperedge 0 must form a clique (E_edge).
        let e = HyperedgeId::new(0);
        let block: Vec<NodeId> = h
            .edge(e)
            .iter()
            .flat_map(|&v| (0..2).map(move |c| (v, c)))
            .map(|(v, c)| cg.node_for(e, v, c).unwrap())
            .collect();
        assert!(pslocal_graph::algo::is_clique(cg.graph(), &block));
        assert_eq!(block.len(), 6);
    }

    #[test]
    fn k1_conflict_graph_has_no_vertex_family() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 1);
        let counts = cg.family_counts();
        assert_eq!(counts.vertex_family, 0, "k = 1 leaves no c ≠ d pairs");
        assert!(counts.edge_family > 0);
    }

    #[test]
    fn same_vertex_same_color_different_edges_are_not_adjacent() {
        // (e,v,c) and (g,v,c) with e ≠ g: NOT adjacent (the u ≠ v
        // reading of E_color — otherwise one vertex could never witness
        // two edges and Lemma 2.1 a) would fail; see module docs).
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        let a = cg.node_for(HyperedgeId::new(0), NodeId::new(0), 0).unwrap();
        let b = cg.node_for(HyperedgeId::new(1), NodeId::new(0), 0).unwrap();
        assert!(!cg.graph().has_edge(a, b));
        let ta = cg.triple_of(a);
        let tb = cg.triple_of(b);
        assert!(!cg.in_color_family(ta, tb));
        assert!(!cg.in_vertex_family(ta, tb));
        // With different colors the same pair IS adjacent via E_vertex.
        let d = cg.node_for(HyperedgeId::new(1), NodeId::new(0), 1).unwrap();
        assert!(cg.graph().has_edge(a, d));
    }

    #[test]
    fn scales_on_planted_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(40, 20, 3));
        let cg = ConflictGraph::build(&inst.hypergraph, 3);
        assert_eq!(
            cg.graph().node_count(),
            ConflictGraph::expected_node_count(&inst.hypergraph, 3)
        );
        // Spot-check the round trip on a sample of nodes.
        for i in (0..cg.graph().node_count()).step_by(7) {
            let t = cg.triple_of(NodeId::new(i));
            assert_eq!(cg.node_for(t.edge, t.vertex, t.color), Some(NodeId::new(i)));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]).unwrap();
        let _ = ConflictGraph::build(&h, 0);
    }

    #[test]
    fn literal_ecolor_option_adds_same_vertex_edges() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 2]]).unwrap();
        let strict = ConflictGraph::build(&h, 2);
        let literal =
            ConflictGraph::build_with_options(&h, 2, ConflictGraphOptions { literal_ecolor: true });
        assert!(!strict.options().literal_ecolor);
        assert!(literal.options().literal_ecolor);
        let a = literal.node_for(HyperedgeId::new(0), NodeId::new(0), 0).unwrap();
        let b = literal.node_for(HyperedgeId::new(1), NodeId::new(0), 0).unwrap();
        assert!(literal.graph().has_edge(a, b), "literal reading connects (e,v,c)-(g,v,c)");
        assert!(!strict.graph().has_edge(a, b));
        assert!(literal.edge_count() > strict.edge_count());
        // The predicate agrees with the built adjacency in both modes.
        let (ta, tb) = (literal.triple_of(a), literal.triple_of(b));
        assert!(literal.in_color_family(ta, tb));
        assert!(!strict.in_color_family(ta, tb));
    }
}
