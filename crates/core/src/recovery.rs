//! Crash-safe checkpointing and corruption-tolerant resumable recovery
//! for the Theorem 1.1 reduction drivers.
//!
//! Long reductions die for boring reasons — OOM kills, preemption,
//! power loss — and the paper's phase loop is expensive to restart from
//! scratch. This module makes both drivers *resumable*: a write-ahead
//! [`PhaseJournal`] durably records each committed phase (the chosen
//! independent set, a fingerprint of the conflict graph it was chosen
//! on, the cumulative oracle-call positions that keep fault schedules
//! deterministic, and the phase's [`FaultEvent`]s), and on restart the
//! `*_resumable` entry points replay the journal, re-validate every
//! record against the actual instance, and continue from the last good
//! phase — producing output **byte-identical** to an uninterrupted run.
//!
//! # Journal format
//!
//! One file, `journal.psj`, inside the checkpoint directory:
//!
//! ```text
//! offset 0   magic  "PSLJRNL\x01"                       (8 bytes)
//! then, repeated:
//!            len    u32 LE — payload byte count
//!            crc    u32 LE — CRC-32 (IEEE) of the payload
//!            payload:
//!              tag  u8 — 0 = header record, 1 = phase record
//!              ...  tag-specific fields (see [`JournalHeader`],
//!                   [`JournalPhase`])
//! ```
//!
//! The first record is always the header; every following record is a
//! phase, indexed sequentially from 0. The whole journal is rewritten
//! on each append via **write-to-temp → fsync → rename → fsync(dir)**,
//! so a crash at any instant leaves either the previous journal or the
//! new one — never a torn file. Corruption that slips through anyway
//! (bit rot, a truncating copy) is caught by the per-record CRC and
//! bounds checks: the parser keeps the longest valid prefix and
//! discards the rest.
//!
//! # Replay state machine
//!
//! Replay trusts nothing. For each phase record, in order:
//!
//! 1. **structure** — length, CRC, tag, and full decode already held at
//!    open; the phase index must equal the replay cursor;
//! 2. **fingerprint** — the stored conflict-graph fingerprint must
//!    match [`fingerprint_graph`] of the graph the cursor actually
//!    reached;
//! 3. **independence** — the stored set must be in range and verified
//!    independent in that graph ([`IndependentSet::new`]);
//! 4. **quota** — the set must meet the Lemma 2.1 quota the original
//!    run enforced ([`JournalPhase::quota_required`]);
//! 5. **re-commit** — the phase is re-committed through the drivers'
//!    shared `commit_phase` and the resulting [`PhaseRecord`] must
//!    equal the stored one (this also re-checks the geometric-decay
//!    invariant where the original run enforced it).
//!
//! The first record that fails any step is discarded **along with
//! everything after it** (the in-memory commit is rolled back and the
//! journal truncated to the good prefix), and the driver resumes
//! normal execution from there. A corrupt journal can therefore cost
//! recomputation, never correctness.

use crate::conflict_graph::ConflictGraph;
use crate::reduction::{commit_phase, decay_allowed, PhaseRecord};
use crate::resilient::{FaultEvent, FaultEventKind};
use pslocal_cfcolor::Multicoloring;
use pslocal_graph::{Graph, HyperedgeId, Hypergraph, IndependentSet, NodeId};
use pslocal_maxis::{CrashPoint, CrashSignal};
use pslocal_telemetry::{names, span, Counter, Sink, Span};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// First bytes of every journal file: format name + format version.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PSLJRNL\x01";

/// The journal's file name inside a checkpoint directory.
pub const JOURNAL_FILE_NAME: &str = "journal.psj";

/// Upper bound on a single record's payload, as a corruption firewall:
/// a bit flip in the `len` field must not make the parser swallow the
/// rest of the file (or attempt a absurd allocation) as one "record".
const MAX_RECORD_LEN: usize = 1 << 26;

const TAG_HEADER: u8 = 0;
const TAG_PHASE: u8 = 1;

// ---------------------------------------------------------------------
// Checksums and fingerprints
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial) of `data` — the per-record checksum
/// of the journal format.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Order-sensitive FNV-1a fingerprint of a hypergraph instance: vertex
/// count, edge count, and every hyperedge's members in order. Stored in
/// the journal header so a journal can never be replayed against a
/// different instance.
///
/// Delegates to the graph crate's frozen byte stream
/// ([`pslocal_graph::fingerprint`]) — the journal format depends on
/// these exact values, and keeping one implementation means the dense
/// bitset kernels and the recovery layer cannot drift apart.
pub fn fingerprint_hypergraph(h: &Hypergraph) -> u64 {
    h.fingerprint()
}

/// Order-sensitive FNV-1a fingerprint of a graph's CSR structure:
/// vertex count, edge count, and every adjacency row in order. Stored
/// per phase record so replay can prove the stored independent set was
/// chosen on the conflict graph the replay cursor actually reached.
///
/// Delegates to [`pslocal_graph::fingerprint`]; equal to
/// `ConflictGraph::fingerprint` of the same graph regardless of which
/// kernel (CSR or bitset) materialized it.
pub fn fingerprint_graph(g: &Graph) -> u64 {
    g.fingerprint()
}

// ---------------------------------------------------------------------
// Byte codec (the vendored serde is derive-only: all encoding is
// hand-rolled, little-endian, length-prefixed)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader; every getter returns `None`
/// past the end, so a truncated payload can never read out of bounds.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn size(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// Which reduction driver wrote a journal. Stored in the header so a
/// trusting-driver journal is never resumed by the resilient driver
/// (their oracle-call accounting differs) or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverKind {
    /// `reduce_cf_to_maxis*` — trusts the oracle, single oracle.
    Trusting,
    /// `reduce_cf_resilient*` — re-validates, walks a fallback chain.
    Resilient,
}

impl DriverKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Trusting => "trusting",
            DriverKind::Resilient => "resilient",
        }
    }

    fn code(self) -> u8 {
        match self {
            DriverKind::Trusting => 0,
            DriverKind::Resilient => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DriverKind::Trusting,
            1 => DriverKind::Resilient,
            _ => return None,
        })
    }
}

impl fmt::Display for DriverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The journal's first record: everything a resume must agree on
/// before a single phase record is trusted. A header mismatch is a
/// *user error* (wrong directory, changed configuration), reported as
/// [`JournalError::HeaderMismatch`] rather than silently discarding a
/// valid journal of some other run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// The driver that writes this journal.
    pub driver: DriverKind,
    /// Promised palette size `k`.
    pub k: usize,
    /// The run's λ, bit-exact ([`f64::to_bits`]).
    pub lambda_bits: u64,
    /// The paper's phase budget `ρ`.
    pub rho: usize,
    /// The effective phase cap (`min(max_phases, ρ)`).
    pub budget: usize,
    /// Worker threads of the component-parallel executor (oracle-call
    /// positions depend on it, so resumes must match).
    pub threads: usize,
    /// [`fingerprint_hypergraph`] of the input instance.
    pub instance_fingerprint: u64,
    /// `name()` of every oracle in the chain, primary first (the
    /// trusting driver stores exactly one).
    pub oracle_names: Vec<String>,
}

impl JournalHeader {
    /// The λ this journal was computed with.
    pub fn lambda(&self) -> f64 {
        f64::from_bits(self.lambda_bits)
    }

    fn encode(&self, e: &mut Enc) {
        e.u8(TAG_HEADER);
        e.u8(self.driver.code());
        e.size(self.k);
        e.u64(self.lambda_bits);
        e.size(self.rho);
        e.size(self.budget);
        e.size(self.threads);
        e.u64(self.instance_fingerprint);
        e.u32(self.oracle_names.len() as u32);
        for name in &self.oracle_names {
            e.str(name);
        }
    }

    /// Decodes the payload *after* the tag byte.
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        let driver = DriverKind::from_code(d.u8()?)?;
        let k = d.size()?;
        let lambda_bits = d.u64()?;
        let rho = d.size()?;
        let budget = d.size()?;
        let threads = d.size()?;
        let instance_fingerprint = d.u64()?;
        let count = d.u32()? as usize;
        if count > 1024 {
            return None;
        }
        let mut oracle_names = Vec::with_capacity(count);
        for _ in 0..count {
            oracle_names.push(d.str()?);
        }
        Some(JournalHeader {
            driver,
            k,
            lambda_bits,
            rho,
            budget,
            threads,
            instance_fingerprint,
            oracle_names,
        })
    }
}

/// A [`FaultEvent`] as stored on disk: identical fields, except the
/// oracle name is owned. Interning back to the `&'static str` the live
/// chain exposes happens at replay ([`StoredFaultEvent::intern`]); a
/// name no oracle in the chain answers to marks the record corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredFaultEvent {
    /// Phase the event occurred in.
    pub phase: usize,
    /// Attempt index within the phase.
    pub attempt: usize,
    /// Name of the oracle involved.
    pub oracle: String,
    /// Conflict-graph component, when the phase ran parallel.
    pub component: Option<usize>,
    /// What happened.
    pub kind: FaultEventKind,
}

impl StoredFaultEvent {
    /// Converts a live fault-log entry for storage.
    pub fn from_event(e: &FaultEvent) -> Self {
        StoredFaultEvent {
            phase: e.phase,
            attempt: e.attempt,
            oracle: e.oracle.to_string(),
            component: e.component,
            kind: e.kind,
        }
    }

    /// Re-interns the stored oracle name against the live chain's
    /// names. `None` = the journal names an oracle this run does not
    /// have — the record cannot belong to this configuration.
    pub fn intern(&self, names: &[&'static str]) -> Option<FaultEvent> {
        let oracle = *names.iter().find(|n| **n == self.oracle)?;
        Some(FaultEvent {
            phase: self.phase,
            attempt: self.attempt,
            oracle,
            component: self.component,
            kind: self.kind,
        })
    }

    fn encode(&self, e: &mut Enc) {
        e.size(self.phase);
        e.size(self.attempt);
        e.str(&self.oracle);
        match self.component {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                e.size(c);
            }
        }
        let (tag, a, b) = match self.kind {
            FaultEventKind::OraclePanicked => (0u8, 0u64, 0u64),
            FaultEventKind::OracleInvalidOutput => (1, 0, 0),
            FaultEventKind::OracleUnderDelivered { delivered, required } => {
                (2, delivered as u64, required as u64)
            }
            FaultEventKind::OracleStalled { steps, tolerance } => {
                (3, steps as u64, tolerance as u64)
            }
            FaultEventKind::FallbackEngaged => (4, 0, 0),
            FaultEventKind::RetriesExhausted { attempts } => (5, attempts as u64, 0),
        };
        e.u8(tag);
        e.u64(a);
        e.u64(b);
    }

    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        let phase = d.size()?;
        let attempt = d.size()?;
        let oracle = d.str()?;
        let component = match d.u8()? {
            0 => None,
            1 => Some(d.size()?),
            _ => return None,
        };
        let tag = d.u8()?;
        let a = d.u64()?;
        let b = d.u64()?;
        let kind = match tag {
            0 => FaultEventKind::OraclePanicked,
            1 => FaultEventKind::OracleInvalidOutput,
            2 => FaultEventKind::OracleUnderDelivered {
                delivered: usize::try_from(a).ok()?,
                required: usize::try_from(b).ok()?,
            },
            3 => FaultEventKind::OracleStalled {
                steps: usize::try_from(a).ok()?,
                tolerance: usize::try_from(b).ok()?,
            },
            4 => FaultEventKind::FallbackEngaged,
            5 => FaultEventKind::RetriesExhausted { attempts: usize::try_from(a).ok()? },
            _ => return None,
        };
        Some(StoredFaultEvent { phase, attempt, oracle, component, kind })
    }
}

/// One committed phase, durably recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalPhase {
    /// Phase index (must be sequential from 0).
    pub phase: usize,
    /// [`fingerprint_graph`] of the conflict graph at phase start.
    pub cg_fingerprint: u64,
    /// The committed independent set's vertices (conflict-graph node
    /// indices).
    pub set: Vec<u64>,
    /// The phase's [`PhaseRecord`], exactly as the driver emitted it.
    pub record: PhaseRecord,
    /// The Lemma 2.1 quota the original run *enforced* on the accepted
    /// set (`0` = none was enforced: the trusting driver, heuristic
    /// oracles, or the component-parallel resilient path whose
    /// per-component quotas do not reduce to one number).
    pub quota_required: usize,
    /// Whether the accepted set came from the primary oracle (slot 0) —
    /// gates the decay re-check on replay exactly as it gated the
    /// original run.
    pub primary: bool,
    /// Cumulative `independent_set` invocations per chain slot after
    /// this phase — the positions [`MaxIsOracle::resume_at`] restores
    /// so per-call fault schedules stay aligned on resume.
    ///
    /// [`MaxIsOracle::resume_at`]: pslocal_maxis::MaxIsOracle::resume_at
    pub chain_calls: Vec<u64>,
    /// Cumulative retries after this phase (resilient driver).
    pub retries: u64,
    /// Cumulative fallback engagements after this phase.
    pub fallbacks: u64,
    /// Fault events logged during this phase.
    pub events: Vec<StoredFaultEvent>,
}

impl JournalPhase {
    fn encode(&self, e: &mut Enc) {
        e.u8(TAG_PHASE);
        e.size(self.phase);
        e.u64(self.cg_fingerprint);
        e.u32(self.set.len() as u32);
        for &v in &self.set {
            e.u64(v);
        }
        e.size(self.record.phase);
        e.size(self.record.edges_before);
        e.size(self.record.conflict_nodes);
        e.size(self.record.conflict_edges);
        e.size(self.record.independent_set_size);
        e.size(self.record.edges_removed);
        e.size(self.record.edges_after);
        e.size(self.quota_required);
        e.u8(self.primary as u8);
        e.u32(self.chain_calls.len() as u32);
        for &c in &self.chain_calls {
            e.u64(c);
        }
        e.u64(self.retries);
        e.u64(self.fallbacks);
        e.u32(self.events.len() as u32);
        for ev in &self.events {
            ev.encode(e);
        }
    }

    /// Decodes the payload *after* the tag byte.
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        let phase = d.size()?;
        let cg_fingerprint = d.u64()?;
        let set_len = d.u32()? as usize;
        if set_len > MAX_RECORD_LEN / 8 {
            return None;
        }
        let mut set = Vec::with_capacity(set_len);
        for _ in 0..set_len {
            set.push(d.u64()?);
        }
        let record = PhaseRecord {
            phase: d.size()?,
            edges_before: d.size()?,
            conflict_nodes: d.size()?,
            conflict_edges: d.size()?,
            independent_set_size: d.size()?,
            edges_removed: d.size()?,
            edges_after: d.size()?,
        };
        let quota_required = d.size()?;
        let primary = match d.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let calls_len = d.u32()? as usize;
        if calls_len > 1024 {
            return None;
        }
        let mut chain_calls = Vec::with_capacity(calls_len);
        for _ in 0..calls_len {
            chain_calls.push(d.u64()?);
        }
        let retries = d.u64()?;
        let fallbacks = d.u64()?;
        let events_len = d.u32()? as usize;
        if events_len > MAX_RECORD_LEN / 16 {
            return None;
        }
        let mut events = Vec::with_capacity(events_len);
        for _ in 0..events_len {
            events.push(StoredFaultEvent::decode(d)?);
        }
        Some(JournalPhase {
            phase,
            cg_fingerprint,
            set,
            record,
            quota_required,
            primary,
            chain_calls,
            retries,
            fallbacks,
            events,
        })
    }
}

// ---------------------------------------------------------------------
// The journal file
// ---------------------------------------------------------------------

/// What [`PhaseJournal::open`] found on disk before any semantic
/// validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenStats {
    /// Total file size in bytes.
    pub bytes_total: u64,
    /// Trailing bytes discarded as structurally invalid (bad CRC, bad
    /// length, partial record, undecodable payload).
    pub bytes_discarded: u64,
    /// Complete-looking records inside the discarded tail (a partial
    /// trailing record counts as one).
    pub records_discarded: usize,
}

/// The write-ahead phase journal: a checkpoint directory's durable
/// record of a reduction run. See the [module docs](self) for the byte
/// format and durability argument.
#[derive(Debug)]
pub struct PhaseJournal {
    path: PathBuf,
    header: JournalHeader,
    phases: Vec<JournalPhase>,
}

impl PhaseJournal {
    /// The journal file path inside `dir`.
    pub fn file_path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE_NAME)
    }

    /// Starts a fresh journal in `dir` (creating the directory,
    /// overwriting any previous journal) and durably persists the
    /// header record.
    pub fn create(dir: &Path, header: JournalHeader) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let journal = PhaseJournal { path: Self::file_path(dir), header, phases: Vec::new() };
        journal.persist()?;
        Ok(journal)
    }

    /// Opens an existing journal in `dir`, keeping the longest
    /// structurally valid record prefix.
    ///
    /// Returns `Ok(None, stats)` when there is no usable journal: the
    /// file is absent, or corruption reaches into the magic/header
    /// itself (`stats` then accounts the whole file as discarded).
    /// Structural validation only — CRC, bounds, decodability, and
    /// sequential phase indices; semantic validation against the
    /// instance is `open_or_replay`'s job.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures; corruption is never an `Err`.
    pub fn open(dir: &Path) -> io::Result<(Option<Self>, OpenStats)> {
        let path = Self::file_path(dir);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((None, OpenStats::default()))
            }
            Err(e) => return Err(e),
        };
        let total = bytes.len() as u64;
        let all_discarded = OpenStats {
            bytes_total: total,
            bytes_discarded: total,
            records_discarded: if total > 0 { 1 } else { 0 },
        };
        if bytes.len() < JOURNAL_MAGIC.len() || bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Ok((None, all_discarded));
        }

        let mut pos = JOURNAL_MAGIC.len();
        let mut header: Option<JournalHeader> = None;
        let mut phases: Vec<JournalPhase> = Vec::new();
        loop {
            if pos == bytes.len() {
                break; // clean end
            }
            let Some(frame) = bytes.get(pos..pos + 8) else { break };
            // pslocal: allow(panic-path, "frame is an 8-byte slice by the get() above, so both 4-byte halves convert infallibly")
            let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
            // pslocal: allow(panic-path, "frame is an 8-byte slice by the get() above, so both 4-byte halves convert infallibly")
            let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
            // Bounds first: a flipped bit in `len` must not send the
            // CRC check (or an allocation) off the end of the file.
            if len == 0 || len > MAX_RECORD_LEN {
                break;
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else { break };
            if crc32(payload) != crc {
                break;
            }
            let mut d = Dec::new(payload);
            let Some(tag) = d.u8() else { break };
            match (tag, header.is_some()) {
                (TAG_HEADER, false) => {
                    let Some(h) = JournalHeader::decode(&mut d) else { break };
                    if !d.done() {
                        break;
                    }
                    header = Some(h);
                }
                (TAG_PHASE, true) => {
                    let Some(p) = JournalPhase::decode(&mut d) else { break };
                    // Sequential from 0 — an out-of-order record and
                    // everything after it is unusable.
                    if !d.done() || p.phase != phases.len() {
                        break;
                    }
                    phases.push(p);
                }
                _ => break,
            }
            pos += 8 + len;
        }

        let Some(header) = header else {
            return Ok((None, all_discarded));
        };
        // Count complete-looking frames in the discarded tail so the
        // recovery report can say "N records dropped", not just bytes.
        let mut records_discarded = 0usize;
        let mut scan = pos;
        while scan < bytes.len() {
            let Some(frame) = bytes.get(scan..scan + 8) else {
                records_discarded += 1; // partial trailing frame
                break;
            };
            // pslocal: allow(panic-path, "frame is an 8-byte slice by the get() above, so the 4-byte prefix converts infallibly")
            let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
            records_discarded += 1;
            if len == 0 || len > MAX_RECORD_LEN || scan + 8 + len > bytes.len() {
                break;
            }
            scan += 8 + len;
        }
        let stats = OpenStats {
            bytes_total: total,
            bytes_discarded: (bytes.len() - pos) as u64,
            records_discarded,
        };
        Ok((Some(PhaseJournal { path, header, phases }), stats))
    }

    /// The header record.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// The structurally valid phase records, in order.
    pub fn phases(&self) -> &[JournalPhase] {
        &self.phases
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one phase record and durably persists the journal.
    /// Returns the journal's new on-disk size in bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the persist path.
    pub fn append_phase(&mut self, phase: JournalPhase) -> io::Result<u64> {
        self.phases.push(phase);
        self.persist()
    }

    /// Drops every phase record past the first `keep` and durably
    /// persists the truncated journal (the discard step of replay).
    ///
    /// # Errors
    ///
    /// Any I/O failure of the persist path.
    pub fn truncate_phases(&mut self, keep: usize) -> io::Result<u64> {
        self.phases.truncate(keep);
        self.persist()
    }

    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&JOURNAL_MAGIC);
        let mut frame = |payload: &[u8]| {
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        };
        let mut e = Enc::default();
        self.header.encode(&mut e);
        frame(&e.0);
        for p in &self.phases {
            let mut e = Enc::default();
            p.encode(&mut e);
            frame(&e.0);
        }
        out
    }

    /// Durably writes the whole journal: encode → temp file → fsync →
    /// atomic rename over the journal → best-effort fsync of the
    /// directory. A crash at any point leaves either the old journal or
    /// the new one intact; a torn write can only ever hit the temp
    /// file. Returns the on-disk size in bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure (the temp file is cleaned up best-effort).
    pub fn persist(&self) -> io::Result<u64> {
        let bytes = self.encoded();
        let tmp = self.path.with_extension("psj.tmp");
        let write = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, &self.path)
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Make the rename itself durable. Directory fsync is
        // platform-dependent; failure here does not un-write the data,
        // so it is best-effort.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }
}

// ---------------------------------------------------------------------
// Crash injection (driver-side kill points)
// ---------------------------------------------------------------------

/// How an injected crash takes the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Panic with a [`CrashSignal`] payload — catchable by a test
    /// harness's `catch_unwind`, used by the in-process suites.
    Panic,
    /// [`std::process::abort`] — no unwinding, no destructors: the real
    /// thing, used by the CLI's `--crash-at` for subprocess-kill tests.
    Abort,
}

/// A scheduled kill point inside a checkpointing driver: die at
/// `phase` when execution reaches `point`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Phase to die in.
    pub phase: usize,
    /// Where within the phase.
    pub point: CrashPoint,
    /// Panic (testable) or abort (real).
    pub mode: CrashMode,
}

impl CrashPlan {
    /// A panicking kill point (in-process tests).
    pub fn panicking(phase: usize, point: CrashPoint) -> Self {
        CrashPlan { phase, point, mode: CrashMode::Panic }
    }

    /// An aborting kill point (subprocess tests, CLI `--crash-at`).
    pub fn aborting(phase: usize, point: CrashPoint) -> Self {
        CrashPlan { phase, point, mode: CrashMode::Abort }
    }

    /// Parses the CLI syntax `PHASE:POINT`, e.g. `2:before-journal`.
    pub fn parse_spec(s: &str) -> Option<(usize, CrashPoint)> {
        let (phase, point) = s.split_once(':')?;
        Some((phase.parse().ok()?, CrashPoint::parse(point)?))
    }

    /// Dies if `(phase, point)` is this plan's kill point; returns
    /// normally otherwise.
    pub fn maybe_crash(&self, phase: usize, point: CrashPoint) {
        if phase != self.phase || point != self.point {
            return;
        }
        match self.mode {
            CrashMode::Abort => {
                eprintln!("injected crash: aborting at phase {phase} ({point})");
                std::process::abort();
            }
            CrashMode::Panic => std::panic::panic_any(CrashSignal { phase, point }),
        }
    }
}

/// Driver-side helper: fire `plan`'s kill point if one is configured.
pub(crate) fn maybe_crash(plan: Option<&CrashPlan>, phase: usize, point: CrashPoint) {
    if let Some(p) = plan {
        p.maybe_crash(phase, point);
    }
}

// ---------------------------------------------------------------------
// Driver-facing configuration and report
// ---------------------------------------------------------------------

/// Checkpointing configuration for the `*_resumable` driver entry
/// points.
#[derive(Debug, Clone)]
pub struct Checkpointing {
    /// Directory holding the journal (created if absent).
    pub dir: PathBuf,
    /// Replay an existing journal instead of starting fresh. Without
    /// this, any previous journal in `dir` is overwritten.
    pub resume: bool,
    /// Optional injected kill point (crash-recovery tests, CLI
    /// `--crash-at`).
    pub crash: Option<CrashPlan>,
}

impl Checkpointing {
    /// Checkpoint into `dir`, starting fresh.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Checkpointing { dir: dir.into(), resume: false, crash: None }
    }

    /// Replays `dir`'s journal before running.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Installs an injected kill point.
    pub fn with_crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }
}

/// What the recovery layer did at startup; returned alongside the
/// outcome by every `*_resumable` entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// A journal file existed and replay was attempted.
    pub resumed: bool,
    /// Phases accepted from the journal (skipped, not recomputed).
    pub phases_recovered: usize,
    /// Records rejected — structurally at open plus semantically at
    /// replay — and therefore recomputed.
    pub records_discarded: usize,
    /// Bytes dropped from the journal's structurally invalid tail.
    pub bytes_discarded: u64,
    /// Journal size on disk after startup.
    pub journal_bytes: u64,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.resumed {
            return write!(f, "fresh journal ({} bytes)", self.journal_bytes);
        }
        write!(
            f,
            "resumed: {} phase(s) recovered, {} record(s) discarded ({} bytes), journal {} bytes",
            self.phases_recovered, self.records_discarded, self.bytes_discarded, self.journal_bytes
        )
    }
}

/// Errors of the recovery layer itself (not of the reduction).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O failure while reading or durably writing the journal.
    Io {
        /// The underlying error, stringified ([`std::io::Error`] is not
        /// `Clone`).
        message: String,
    },
    /// A structurally valid journal whose header disagrees with the
    /// requested run — almost certainly the wrong checkpoint directory,
    /// so the journal is preserved and the resume refused.
    HeaderMismatch {
        /// The first disagreeing header field.
        field: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { message } => write!(f, "journal I/O error: {message}"),
            JournalError::HeaderMismatch { field } => {
                write!(f, "journal header mismatch on `{field}` (wrong checkpoint directory?)")
            }
        }
    }
}

impl Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io { message: e.to_string() }
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// The run parameters replay validates records against — everything
/// the driver computed before its phase loop.
pub(crate) struct ReplayCtx<'a> {
    pub h: &'a Hypergraph,
    pub driver: DriverKind,
    pub k: usize,
    pub lambda: f64,
    pub rho: usize,
    pub budget: usize,
    pub threads: usize,
    /// Decay re-check applies to primary-accepted phases (certified
    /// oracle, no λ override) — exactly when the original run enforced
    /// it.
    pub enforce_decay: bool,
    pub chain_names: Vec<&'static str>,
}

impl ReplayCtx<'_> {
    fn expected_header(&self) -> JournalHeader {
        JournalHeader {
            driver: self.driver,
            k: self.k,
            lambda_bits: self.lambda.to_bits(),
            rho: self.rho,
            budget: self.budget,
            threads: self.threads,
            instance_fingerprint: fingerprint_hypergraph(self.h),
            oracle_names: self.chain_names.iter().map(|n| n.to_string()).collect(),
        }
    }
}

/// Replayed driver state: the journal (truncated to its validated
/// prefix), the startup report, and every accumulator the driver must
/// continue from.
pub(crate) struct Replayed {
    pub journal: PhaseJournal,
    pub report: RecoveryReport,
    /// Next phase to execute.
    pub phase: usize,
    pub records: Vec<PhaseRecord>,
    /// Cumulative oracle calls per chain slot (resume positions).
    pub chain_calls: Vec<u64>,
    pub retries: u64,
    pub fallbacks: u64,
    pub fault_log: Vec<FaultEvent>,
}

fn field_mismatch(expected: &JournalHeader, found: &JournalHeader) -> Option<&'static str> {
    if found.driver != expected.driver {
        return Some("driver");
    }
    if found.instance_fingerprint != expected.instance_fingerprint {
        return Some("instance_fingerprint");
    }
    if found.k != expected.k {
        return Some("k");
    }
    if found.lambda_bits != expected.lambda_bits {
        return Some("lambda");
    }
    if found.rho != expected.rho {
        return Some("rho");
    }
    if found.budget != expected.budget {
        return Some("budget");
    }
    if found.threads != expected.threads {
        return Some("threads");
    }
    if found.oracle_names != expected.oracle_names {
        return Some("oracle_names");
    }
    None
}

/// Opens (or freshly creates) the journal in `ckpt.dir` and replays
/// its validated prefix into the driver's live state (`cg`,
/// `coloring`, `residual` are advanced past every accepted phase).
///
/// See the [module docs](self) for the replay state machine. On any
/// rejection the in-memory commit of the offending record is rolled
/// back, the journal is truncated to the good prefix, and the
/// remaining phases are left for live execution.
pub(crate) fn open_or_replay<S: Sink>(
    ctx: &ReplayCtx<'_>,
    ckpt: &Checkpointing,
    cg: &mut ConflictGraph,
    coloring: &mut Multicoloring,
    residual: &mut Vec<HyperedgeId>,
    parent: &Span<'_, S>,
) -> Result<Replayed, JournalError> {
    let expected = ctx.expected_header();
    let slots = ctx.chain_names.len();
    let fresh = |journal: PhaseJournal, report: RecoveryReport| Replayed {
        journal,
        report,
        phase: 0,
        records: Vec::new(),
        chain_calls: vec![0; slots],
        retries: 0,
        fallbacks: 0,
        fault_log: Vec::new(),
    };

    if !ckpt.resume {
        let journal = PhaseJournal::create(&ckpt.dir, expected)?;
        let journal_bytes = journal.encoded().len() as u64;
        return Ok(fresh(journal, RecoveryReport { journal_bytes, ..Default::default() }));
    }

    let (opened, stats) = PhaseJournal::open(&ckpt.dir)?;
    let Some(mut journal) = opened else {
        // Absent or corrupt beyond the header: start fresh, but account
        // for what was thrown away.
        let journal = PhaseJournal::create(&ckpt.dir, expected)?;
        let journal_bytes = journal.encoded().len() as u64;
        return Ok(fresh(
            journal,
            RecoveryReport {
                resumed: stats.bytes_total > 0,
                records_discarded: stats.records_discarded,
                bytes_discarded: stats.bytes_discarded,
                journal_bytes,
                ..Default::default()
            },
        ));
    };
    if let Some(field) = field_mismatch(&expected, journal.header()) {
        return Err(JournalError::HeaderMismatch { field });
    }

    let replay_span = span!(parent, names::RECOVERY_REPLAY);
    let mut records: Vec<PhaseRecord> = Vec::new();
    let mut fault_log: Vec<FaultEvent> = Vec::new();
    let mut chain_calls: Vec<u64> = vec![0; slots];
    let mut retries = 0u64;
    let mut fallbacks = 0u64;
    let mut phase = 0usize;
    let mut rejected: Option<usize> = None;

    for (idx, jp) in journal.phases().iter().enumerate() {
        debug_assert_eq!(jp.phase, phase, "open() guarantees sequential indices");
        let valid = validate_and_commit(
            ctx,
            jp,
            phase,
            cg,
            coloring,
            residual,
            &chain_calls,
            (retries, fallbacks),
        );
        let Some(committed) = valid else {
            rejected = Some(idx);
            break;
        };
        records.push(jp.record.clone());
        fault_log.extend(committed.events);
        chain_calls.clone_from(&jp.chain_calls);
        retries = jp.retries;
        fallbacks = jp.fallbacks;
        phase += 1;
        replay_span.add(Counter::PhasesRecovered, 1);
        if !residual.is_empty() && phase < ctx.budget {
            *cg = cg.restrict_to_edges(&committed.keep_pos);
        }
    }

    let mut records_discarded = stats.records_discarded;
    if let Some(idx) = rejected {
        records_discarded += journal.phases().len() - idx;
        journal.truncate_phases(idx)?;
    }
    let journal_bytes = journal.encoded().len() as u64;
    replay_span.close();

    Ok(Replayed {
        journal,
        report: RecoveryReport {
            resumed: true,
            phases_recovered: phase,
            records_discarded,
            bytes_discarded: stats.bytes_discarded,
            journal_bytes,
        },
        phase,
        records,
        chain_calls,
        retries,
        fallbacks,
        fault_log,
    })
}

struct CommittedReplay {
    keep_pos: Vec<HyperedgeId>,
    events: Vec<FaultEvent>,
}

/// One record through replay steps 2–5 (see module docs). `None` =
/// rejected; the in-memory state is exactly as before the call.
#[allow(clippy::too_many_arguments)]
fn validate_and_commit(
    ctx: &ReplayCtx<'_>,
    jp: &JournalPhase,
    phase: usize,
    cg: &mut ConflictGraph,
    coloring: &mut Multicoloring,
    residual: &mut Vec<HyperedgeId>,
    prev_calls: &[u64],
    prev_counts: (u64, u64),
) -> Option<CommittedReplay> {
    // Counters may only grow, and the chain shape is fixed.
    if jp.chain_calls.len() != prev_calls.len()
        || jp.chain_calls.iter().zip(prev_calls).any(|(now, before)| now < before)
        || jp.retries < prev_counts.0
        || jp.fallbacks < prev_counts.1
    {
        return None;
    }
    // Fingerprint: the set must have been chosen on *this* graph.
    if jp.cg_fingerprint != fingerprint_graph(cg.graph()) {
        return None;
    }
    // Independence, range-checked first (`IndependentSet::new` expects
    // in-range vertices).
    let n = cg.graph().node_count();
    if jp.set.iter().any(|&v| v >= n as u64) {
        return None;
    }
    let vertices: Vec<NodeId> = jp.set.iter().map(|&v| NodeId::new(v as usize)).collect();
    let set = IndependentSet::new(cg.graph(), vertices).ok()?;
    if set.len() < jp.quota_required {
        return None;
    }
    // Events must intern against the live chain.
    let mut events = Vec::with_capacity(jp.events.len());
    for ev in &jp.events {
        events.push(ev.intern(&ctx.chain_names)?);
    }
    // Re-commit and compare: the stored record must be *exactly* what
    // committing this set produces. Snapshot first so a lying record
    // can be rolled back.
    let coloring_snapshot = coloring.clone();
    let residual_snapshot = residual.clone();
    let edges_before = residual.len();
    let commit = commit_phase(ctx.h, cg, &set, ctx.k, phase, coloring, residual);
    let reproduced = PhaseRecord {
        phase,
        edges_before,
        conflict_nodes: cg.graph().node_count(),
        conflict_edges: cg.graph().edge_count(),
        independent_set_size: set.len(),
        edges_removed: edges_before - commit.edges_after,
        edges_after: commit.edges_after,
    };
    let decay_ok = !(ctx.enforce_decay && jp.primary)
        || commit.edges_after <= decay_allowed(edges_before, ctx.lambda);
    if reproduced != jp.record || !decay_ok {
        *coloring = coloring_snapshot;
        *residual = residual_snapshot;
        return None;
    }
    Some(CommittedReplay { keep_pos: commit.keep_pos, events })
}

// ---------------------------------------------------------------------
// Inspection (CLI `checkpoint-inspect`)
// ---------------------------------------------------------------------

/// A human-oriented summary of a checkpoint directory, produced without
/// any live run configuration (structural validation only).
#[derive(Debug, Clone)]
pub struct JournalInspection {
    /// The validated header.
    pub header: JournalHeader,
    /// Structural open stats.
    pub stats: OpenStats,
    /// Per-phase summaries of the valid prefix.
    pub phases: Vec<JournalPhase>,
}

/// Inspects the journal in `dir` without replaying it.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be read or holds no
/// structurally valid header (an absent file reports as I/O: there is
/// nothing to inspect).
pub fn inspect_journal(dir: &Path) -> Result<JournalInspection, JournalError> {
    let (opened, stats) = PhaseJournal::open(dir)?;
    let Some(journal) = opened else {
        let message = if stats.bytes_total == 0 {
            format!("no journal found at {}", PhaseJournal::file_path(dir).display())
        } else {
            format!(
                "journal at {} is corrupt before the header ({} bytes unusable)",
                PhaseJournal::file_path(dir).display(),
                stats.bytes_total
            )
        };
        return Err(JournalError::Io { message });
    };
    Ok(JournalInspection { header: journal.header.clone(), stats, phases: journal.phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::cycle;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pslocal-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn header(names: &[&str]) -> JournalHeader {
        JournalHeader {
            driver: DriverKind::Resilient,
            k: 3,
            lambda_bits: 4.0f64.to_bits(),
            rho: 7,
            budget: 7,
            threads: 1,
            instance_fingerprint: 0xDEAD_BEEF,
            oracle_names: names.iter().map(|n| n.to_string()).collect(),
        }
    }

    fn phase_rec(phase: usize) -> JournalPhase {
        JournalPhase {
            phase,
            cg_fingerprint: 42 + phase as u64,
            set: vec![1, 3, 5],
            record: PhaseRecord {
                phase,
                edges_before: 10 - phase,
                conflict_nodes: 30,
                conflict_edges: 80,
                independent_set_size: 3,
                edges_removed: 1,
                edges_after: 9 - phase,
            },
            quota_required: 2,
            primary: phase.is_multiple_of(2),
            chain_calls: vec![phase as u64 + 1, 0],
            retries: phase as u64,
            fallbacks: 0,
            events: vec![StoredFaultEvent {
                phase,
                attempt: 0,
                oracle: "greedy".into(),
                component: None,
                kind: FaultEventKind::OracleStalled { steps: 9, tolerance: 8 },
            }],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_roundtrip_preserves_every_field() {
        let dir = temp_dir("roundtrip");
        let mut j = PhaseJournal::create(&dir, header(&["greedy", "exact"])).unwrap();
        j.append_phase(phase_rec(0)).unwrap();
        j.append_phase(phase_rec(1)).unwrap();
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        let opened = opened.expect("journal parses");
        assert_eq!(opened.header(), &header(&["greedy", "exact"]));
        assert_eq!(opened.phases(), &[phase_rec(0), phase_rec(1)]);
        assert_eq!(stats.bytes_discarded, 0);
        assert_eq!(stats.records_discarded, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_opens_as_none() {
        let dir = temp_dir("missing");
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        assert!(opened.is_none());
        assert_eq!(stats, OpenStats::default());
    }

    #[test]
    fn bad_magic_discards_whole_file() {
        let dir = temp_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(PhaseJournal::file_path(&dir), b"NOTAJOURNAL").unwrap();
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        assert!(opened.is_none());
        assert_eq!(stats.bytes_discarded, stats.bytes_total);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_keeps_the_good_prefix() {
        let dir = temp_dir("truncate");
        let mut j = PhaseJournal::create(&dir, header(&["greedy"])).unwrap();
        j.append_phase(phase_rec(0)).unwrap();
        let good_len = fs::metadata(j.path()).unwrap().len();
        j.append_phase(phase_rec(1)).unwrap();
        // Simulate a crash-torn append: cut the file mid-record.
        let bytes = fs::read(j.path()).unwrap();
        fs::write(j.path(), &bytes[..good_len as usize + 5]).unwrap();
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        let opened = opened.expect("prefix survives");
        assert_eq!(opened.phases().len(), 1);
        assert_eq!(opened.phases()[0], phase_rec(0));
        assert_eq!(stats.records_discarded, 1);
        assert_eq!(stats.bytes_discarded, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_bit_flip_is_caught_or_harmless() {
        // Flip each byte of a small journal once: open() must never
        // panic, and the result is either the original content (flip in
        // slack the parser re-derives, which cannot happen here) or a
        // strictly shorter valid prefix.
        let dir = temp_dir("bitflip");
        let mut j = PhaseJournal::create(&dir, header(&["greedy"])).unwrap();
        j.append_phase(phase_rec(0)).unwrap();
        let pristine = fs::read(j.path()).unwrap();
        for pos in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[pos] ^= 0x40;
            fs::write(j.path(), &corrupt).unwrap();
            let (opened, _) = PhaseJournal::open(&dir).unwrap();
            if let Some(parsed) = opened {
                assert!(
                    parsed.phases().is_empty() || corrupt == pristine,
                    "flip at byte {pos} went undetected"
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_phase_indices_are_rejected() {
        let dir = temp_dir("order");
        let mut j = PhaseJournal::create(&dir, header(&["greedy"])).unwrap();
        j.append_phase(phase_rec(0)).unwrap();
        j.append_phase(phase_rec(2)).unwrap(); // gap: should be 1
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        assert_eq!(opened.expect("prefix survives").phases().len(), 1);
        assert_eq!(stats.records_discarded, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_is_bounded() {
        let dir = temp_dir("length");
        let j = PhaseJournal::create(&dir, header(&["greedy"])).unwrap();
        let mut bytes = fs::read(j.path()).unwrap();
        // Append a frame whose length claims far more than the file holds.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        fs::write(j.path(), &bytes).unwrap();
        let (opened, stats) = PhaseJournal::open(&dir).unwrap();
        assert!(opened.is_some(), "header prefix still valid");
        assert_eq!(stats.records_discarded, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_fields_are_reported() {
        let a = header(&["greedy"]);
        for (field, mutate) in [
            (
                "driver",
                Box::new(|h: &mut JournalHeader| h.driver = DriverKind::Trusting)
                    as Box<dyn Fn(&mut JournalHeader)>,
            ),
            ("instance_fingerprint", Box::new(|h| h.instance_fingerprint ^= 1)),
            ("k", Box::new(|h| h.k += 1)),
            ("lambda", Box::new(|h| h.lambda_bits ^= 1)),
            ("rho", Box::new(|h| h.rho += 1)),
            ("budget", Box::new(|h| h.budget += 1)),
            ("threads", Box::new(|h| h.threads += 1)),
            ("oracle_names", Box::new(|h| h.oracle_names.push("extra".into()))),
        ] {
            let mut b = a.clone();
            mutate(&mut b);
            assert_eq!(field_mismatch(&a, &b), Some(field));
        }
        assert_eq!(field_mismatch(&a, &a.clone()), None);
    }

    #[test]
    fn fingerprints_separate_instances_and_graphs() {
        let g1 = cycle(10);
        let g2 = cycle(11);
        assert_ne!(fingerprint_graph(&g1), fingerprint_graph(&g2));
        assert_eq!(fingerprint_graph(&g1), fingerprint_graph(&cycle(10)));
        let h1 = Hypergraph::from_edges(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let h2 = Hypergraph::from_edges(6, vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert_ne!(fingerprint_hypergraph(&h1), fingerprint_hypergraph(&h2));
        assert_eq!(fingerprint_hypergraph(&h1), {
            let h = Hypergraph::from_edges(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
            fingerprint_hypergraph(&h)
        });
    }

    #[test]
    fn stored_fault_event_interns_only_known_oracles() {
        let ev = StoredFaultEvent {
            phase: 1,
            attempt: 2,
            oracle: "greedy".into(),
            component: Some(4),
            kind: FaultEventKind::FallbackEngaged,
        };
        let interned = ev.intern(&["exact", "greedy"]).expect("known name");
        assert_eq!(interned.oracle, "greedy");
        assert_eq!(interned.component, Some(4));
        assert!(ev.intern(&["exact"]).is_none());
        assert_eq!(StoredFaultEvent::from_event(&interned), ev);
    }

    #[test]
    fn crash_plan_parses_cli_spec() {
        assert_eq!(CrashPlan::parse_spec("2:before-journal"), Some((2, CrashPoint::BeforeJournal)));
        assert_eq!(CrashPlan::parse_spec("0:mid-oracle"), Some((0, CrashPoint::MidOracle)));
        assert_eq!(CrashPlan::parse_spec("x:mid-oracle"), None);
        assert_eq!(CrashPlan::parse_spec("1:nowhere"), None);
        assert_eq!(CrashPlan::parse_spec("nocolon"), None);
    }

    #[test]
    fn crash_plan_panics_with_signal_at_its_point_only() {
        let plan = CrashPlan::panicking(1, CrashPoint::AfterOracle);
        plan.maybe_crash(0, CrashPoint::AfterOracle); // wrong phase: no-op
        plan.maybe_crash(1, CrashPoint::BeforeJournal); // wrong point: no-op
        let err = std::panic::catch_unwind(|| plan.maybe_crash(1, CrashPoint::AfterOracle))
            .expect_err("kill point fires");
        let sig = err.downcast_ref::<CrashSignal>().expect("typed payload");
        assert_eq!(*sig, CrashSignal { phase: 1, point: CrashPoint::AfterOracle });
    }

    #[test]
    fn inspect_reports_absent_and_corrupt_journals() {
        let dir = temp_dir("inspect");
        let err = inspect_journal(&dir).unwrap_err();
        assert!(err.to_string().contains("no journal"));
        let mut j = PhaseJournal::create(&dir, header(&["greedy"])).unwrap();
        j.append_phase(phase_rec(0)).unwrap();
        let insp = inspect_journal(&dir).unwrap();
        assert_eq!(insp.header.k, 3);
        assert_eq!(insp.phases.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
