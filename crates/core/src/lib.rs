//! # pslocal-core
//!
//! The primary contribution of *"P-SLOCAL-Completeness of Maximum
//! Independent Set Approximation"* (Maus, PODC 2019), as an executable
//! library:
//!
//! * [`ConflictGraph`] — the Section 2 construction `G_k` on triples
//!   `(e, v, c)` with the `E_vertex`/`E_edge`/`E_color` families;
//! * [`correspondence`] — Lemma 2.1, both directions, with the lemma's
//!   inequalities as runtime assertions;
//! * [`reduction`] — the hardness half of Theorem 1.1: conflict-free
//!   multicoloring through any λ-approximate MaxIS oracle in
//!   `ρ = λ·ln m + 1` phases and `k·ρ` colors;
//! * [`containment`] — the containment half via network decomposition
//!   (\[GKM17, Thm 7.1\]);
//! * [`completeness`] — both halves composed and machine-checked;
//! * [`simulation`] — the paper's "G_k can be efficiently simulated in
//!   H in the LOCAL model" claim, measured (dilation ≤ 1).
//!
//! # Examples
//!
//! The whole Theorem 1.1 pipeline in a few lines:
//!
//! ```
//! use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
//! use pslocal_cfcolor::checker::is_conflict_free;
//! use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
//! use pslocal_maxis::GreedyOracle;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(40, 16, 3));
//! let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(3))?;
//! assert!(is_conflict_free(&inst.hypergraph, &out.coloring));
//! assert!(out.phases_used <= out.rho);
//! assert!(out.total_colors <= 3 * out.rho);
//! # Ok(())
//! # }
//! ```
//!
//! Component-parallel phase execution ([`components`]) is an execution
//! knob, never a semantic one — any thread count reproduces the serial
//! run byte-for-byte:
//!
//! ```
//! use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
//! use pslocal_graph::generators::hyper::{multi_component_cf_instance, PlantedCfParams};
//! use pslocal_maxis::GreedyOracle;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! // 4 vertex-disjoint planted copies: G_k has ≥ 4 components.
//! let inst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(24, 8, 3), 4);
//! let serial = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(3))?;
//! let parallel = reduce_cf_to_maxis(
//!     &inst.hypergraph,
//!     &GreedyOracle,
//!     ReductionConfig::new(3).with_threads(4),
//! )?;
//! assert_eq!(parallel.coloring, serial.coloring);
//! assert_eq!(parallel.records, serial.records);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod completeness;
pub mod components;
pub mod conflict_graph;
pub mod containment;
pub mod correspondence;
pub mod distributed;
pub mod protocol;
pub mod recovery;
pub mod reduction;
pub mod resilient;
pub mod server;
pub mod service;
pub mod simulation;
pub mod sync;
pub mod workspace;

pub use completeness::{completeness_on_instance, CompletenessReport};
pub use components::{
    parallel_independent_set, ComponentExecutor, ComponentPartition, ParallelismOptions,
};
pub use conflict_graph::{
    BuildStrategy, ConflictGraph, ConflictGraphOptions, FamilyCounts, Triple,
};
pub use containment::{containment_certificate, ContainmentReport};
pub use correspondence::{
    apply_palette, coloring_to_independent_set, independent_set_to_coloring, lemma_2_1a,
    lemma_2_1b, total_coloring_as_indices, ColoringToSet, SetToColoring,
};
pub use distributed::{
    distributed_reduction, distributed_reduction_with, DistributedPhase, DistributedReduction,
};
pub use recovery::{
    crc32, fingerprint_graph, fingerprint_hypergraph, inspect_journal, Checkpointing, CrashMode,
    CrashPlan, DriverKind, JournalError, JournalHeader, JournalInspection, JournalPhase, OpenStats,
    PhaseJournal, RecoveryReport, StoredFaultEvent, JOURNAL_FILE_NAME,
};
pub use reduction::{
    lemma_2_1_quota, oracle_locality, reduce_cf_to_maxis, reduce_cf_to_maxis_resumable,
    reduce_cf_to_maxis_traced, reduce_cf_to_maxis_with_workspace, PhaseRecord, ReductionConfig,
    ReductionError, ReductionOutcome,
};
pub use resilient::{
    reduce_cf_resilient, reduce_cf_resilient_resumable, reduce_cf_resilient_traced,
    reduce_cf_resilient_with_workspace, stall_budget, FaultEvent, FaultEventKind, PartialOutcome,
    ResilientConfig, ResilientFailure, ResilientOutcome,
};
pub use server::{Server, ServerConfig, ServerReport, ShutdownHandle, DEFAULT_MAX_CONNECTIONS};
pub use service::{
    BoxedOracle, QueueFull, RequestOutcome, Service, ServiceConfig, ServiceReport, ServiceRequest,
    ServiceResponse, DEFAULT_QUEUE_CAPACITY,
};
pub use simulation::{host_of, simulate_in_hypergraph, SimulationReport};
pub use workspace::PhaseWorkspace;
