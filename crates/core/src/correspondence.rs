//! The Lemma 2.1 correspondence between independent sets of `G_k` and
//! (partial) conflict-free colorings of `H`.
//!
//! * **(a)** a conflict-free `k`-coloring `f` of `H` induces an
//!   independent set `I_f` of `G_k` with `|I_f| = m = |E(H)|`, and no
//!   independent set of `G_k` is larger (one triple per hyperedge is
//!   the ceiling, by `E_edge`);
//! * **(b)** any independent set `I ⊆ V(G_k)` induces a *well-defined*
//!   partial coloring `f_I` (Equation (1)) under which at least `|I|`
//!   edges of `H` are happy.
//!
//! Both directions are implemented exactly as in the paper's proof, and
//! both return data the experiments assert against ([`lemma_2_1a`],
//! [`lemma_2_1b`]).

use crate::conflict_graph::ConflictGraph;
use pslocal_cfcolor::{checker, Multicoloring, PartialColoring};
use pslocal_graph::{Color, IndependentSet, NodeId};

/// Outcome of the Lemma 2.1(a) direction `f → I_f`.
#[derive(Debug, Clone)]
pub struct ColoringToSet {
    /// The induced independent set of `G_k`.
    pub independent_set: IndependentSet,
    /// Hyperedges that had no uniquely-colored vertex under `f` (empty
    /// iff `f` is conflict-free, in which case
    /// `independent_set.len() == m`).
    pub unhappy_edges: Vec<pslocal_graph::HyperedgeId>,
}

/// Lemma 2.1(a): builds `I_f` from a (total or partial) single-coloring
/// given as 0-based color indices per vertex (`None` = uncolored).
///
/// For each hyperedge with a uniquely colored vertex, one triple
/// `(e, v, f(v))` joins the set — "breaking ties arbitrarily" is
/// implemented as picking the smallest such vertex.
///
/// # Panics
///
/// Panics if `coloring.len()` differs from the hypergraph's vertex
/// count, or some color index is `≥ k`.
pub fn coloring_to_independent_set(
    cg: &ConflictGraph,
    coloring: &[Option<usize>],
) -> ColoringToSet {
    let h = cg.hypergraph();
    assert_eq!(coloring.len(), h.node_count(), "coloring length mismatch");
    let mut members = Vec::new();
    let mut unhappy = Vec::new();
    for e in h.edge_ids() {
        let vertices = h.edge(e);
        // Find a vertex whose color occurs exactly once within e.
        let witness = vertices.iter().copied().find(|&v| {
            let Some(c) = coloring[v.index()] else { return false };
            assert!(c < cg.k(), "color index {c} outside palette of size {}", cg.k());
            vertices.iter().filter(|&&u| coloring[u.index()] == Some(c)).count() == 1
        });
        match witness {
            Some(v) => {
                // Invariants: the witness predicate only matches colored
                // vertices, and (e, v, c) with v ∈ e, c < k is a node of
                // G_k by construction.
                // pslocal: allow(panic-path, "invariant stated above: the witness predicate only matches colored vertices")
                let c = coloring[v.index()].expect("witness is colored");
                // pslocal: allow(panic-path, "invariant stated above: (e, v, c) with v in e and c < k is a node of G_k by construction")
                members.push(cg.node_for(e, v, c).expect("triple exists"));
            }
            None => unhappy.push(e),
        }
    }
    let independent_set = IndependentSet::new(cg.graph(), members)
        // pslocal: allow(panic-path, "Lemma 2.1 a) of the paper proves the induced set independent; a violation falsifies the reduction and must abort loudly")
        .expect("Lemma 2.1 a): the induced set is independent");
    ColoringToSet { independent_set, unhappy_edges: unhappy }
}

/// Outcome of the Lemma 2.1(b) direction `I → f_I`.
#[derive(Debug, Clone)]
pub struct SetToColoring {
    /// The induced partial coloring `f_I` (0-based color indices stored
    /// as [`Color`] values `0..k`).
    pub coloring: PartialColoring,
    /// Number of happy edges of `H` under `f_I`.
    pub happy_edges: usize,
}

/// Lemma 2.1(b): builds `f_I` (Equation (1)) from an independent set of
/// `G_k` and counts happy edges.
///
/// The partial coloring assigns `f(v) = c` for every `(e, v, c) ∈ I`;
/// well-definedness (no vertex gets two colors) holds because `E_vertex`
/// forbids it — the [`PartialColoring::assign`] assertion is the
/// executable proof obligation.
///
/// # Panics
///
/// Panics if `set` is not a vertex set of `cg.graph()`.
pub fn independent_set_to_coloring(cg: &ConflictGraph, set: &IndependentSet) -> SetToColoring {
    let h = cg.hypergraph();
    let mut coloring = PartialColoring::new(h.node_count());
    for node in set.iter() {
        let t = cg.triple_of(node);
        coloring.assign(t.vertex, Color::new(t.color));
    }
    let mc = coloring.to_multicoloring();
    let happy = checker::happy_count(h, &mc);
    SetToColoring { coloring, happy_edges: happy }
}

/// Asserts the full Lemma 2.1(a) statement for a conflict-free
/// coloring: `I_f` independent (by construction) with `|I_f| = m`, and
/// returns the set.
///
/// # Panics
///
/// Panics if `coloring` is not conflict-free for the hypergraph, or the
/// lemma's size equality fails (which would falsify the paper).
pub fn lemma_2_1a(cg: &ConflictGraph, coloring: &[Option<usize>]) -> IndependentSet {
    let out = coloring_to_independent_set(cg, coloring);
    assert!(
        out.unhappy_edges.is_empty(),
        "Lemma 2.1 a) requires a conflict-free coloring; unhappy: {:?}",
        out.unhappy_edges
    );
    assert_eq!(
        out.independent_set.len(),
        cg.hypergraph().edge_count(),
        "Lemma 2.1 a): |I_f| must equal m"
    );
    out.independent_set
}

/// Asserts the full Lemma 2.1(b) statement: `f_I` well defined and at
/// least `|I|` edges happy; returns the induced coloring.
///
/// # Panics
///
/// Panics if the happiness inequality fails (which would falsify the
/// paper).
pub fn lemma_2_1b(cg: &ConflictGraph, set: &IndependentSet) -> SetToColoring {
    let out = independent_set_to_coloring(cg, set);
    assert!(
        out.happy_edges >= set.len(),
        "Lemma 2.1 b): happy(f_I) = {} < |I| = {}",
        out.happy_edges,
        set.len()
    );
    out
}

/// Converts a total single-coloring (as produced by the planted
/// generator) into the `Option` form the correspondence consumes.
pub fn total_coloring_as_indices(colors: &[Color]) -> Vec<Option<usize>> {
    colors.iter().map(|c| Some(c.index())).collect()
}

/// Converts the partial coloring `f_I` into a [`Multicoloring`] with
/// the given palette applied (palette index `c` becomes
/// `palette.color(c)`), used by the reduction to merge phases.
pub fn apply_palette(coloring: &PartialColoring, palette: pslocal_graph::Palette) -> Multicoloring {
    let mut mc = Multicoloring::new(coloring.node_count());
    for i in 0..coloring.node_count() {
        let v = NodeId::new(i);
        if let Some(c) = coloring.color_of(v) {
            mc.add_color(v, palette.color(c.index()));
        }
    }
    mc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_graph::{Hypergraph, Palette};
    use pslocal_maxis::{GreedyOracle, MaxIsOracle};
    use rand::SeedableRng;

    fn planted(seed: u64) -> (ConflictGraph, Vec<Option<usize>>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(30, 15, 3));
        let cg = ConflictGraph::build(&inst.hypergraph, 3);
        let coloring = total_coloring_as_indices(&inst.planted_coloring);
        (cg, coloring)
    }

    #[test]
    fn lemma_a_holds_on_planted_instances() {
        for seed in 0..5 {
            let (cg, coloring) = planted(seed);
            let set = lemma_2_1a(&cg, &coloring);
            assert_eq!(set.len(), cg.hypergraph().edge_count());
        }
    }

    #[test]
    fn lemma_a_set_is_maximum() {
        // No independent set exceeds m (each hyperedge's block is a
        // clique). Verify with the exact solver on a small instance.
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        let alpha = pslocal_maxis::ExactOracle.independence_number(cg.graph());
        assert_eq!(alpha, 3, "α(G_k) = m when H is CF k-colorable");
    }

    #[test]
    fn lemma_b_holds_for_oracle_outputs() {
        for seed in 0..5 {
            let (cg, _) = planted(seed);
            let set = GreedyOracle.independent_set(cg.graph());
            let out = lemma_2_1b(&cg, &set);
            assert!(out.happy_edges >= set.len());
            assert!(out.coloring.colored_count() <= set.len());
        }
    }

    #[test]
    fn round_trip_preserves_happiness() {
        let (cg, coloring) = planted(7);
        let set = lemma_2_1a(&cg, &coloring);
        let out = lemma_2_1b(&cg, &set);
        // All m edges happy under f_{I_f}.
        assert_eq!(out.happy_edges, cg.hypergraph().edge_count());
    }

    #[test]
    fn partial_colorings_are_supported_in_direction_a() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        // Only vertex 0 colored: edge 0 happy, edge 1 not.
        let coloring = vec![Some(0), None, None];
        let out = coloring_to_independent_set(&cg, &coloring);
        assert_eq!(out.independent_set.len(), 1);
        assert_eq!(out.unhappy_edges.len(), 1);
    }

    #[test]
    fn empty_set_gives_empty_coloring() {
        let (cg, _) = planted(1);
        let empty = IndependentSet::empty();
        let out = independent_set_to_coloring(&cg, &empty);
        assert_eq!(out.coloring.colored_count(), 0);
        assert_eq!(out.happy_edges, 0);
    }

    #[test]
    fn apply_palette_offsets_colors() {
        let mut f = PartialColoring::new(3);
        f.assign(NodeId::new(0), Color::new(1));
        f.assign(NodeId::new(2), Color::new(0));
        let mc = apply_palette(&f, Palette::phase(3, 2)); // offset 6
        assert_eq!(mc.colors_of(NodeId::new(0)), &[Color::new(7)]);
        assert_eq!(mc.colors_of(NodeId::new(2)), &[Color::new(6)]);
        assert!(mc.colors_of(NodeId::new(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "requires a conflict-free coloring")]
    fn lemma_a_rejects_non_cf_colorings() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        // Both endpoints share a color: the single edge is unhappy.
        let _ = lemma_2_1a(&cg, &[Some(0), Some(0)]);
    }
}
