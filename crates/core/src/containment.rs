//! The containment direction of Theorem 1.1: polylogarithmic MaxIS
//! approximation **is in P-SLOCAL**.
//!
//! The paper inherits this from \[GKM17, Theorem 7.1\]; the executable
//! version assembles it from the pieces this workspace built: the
//! ball-carving network decomposition of `pslocal-slocal` (polylog
//! locality, `⌈log₂ n⌉ + 1` colors) feeds the
//! [`DecompositionOracle`], whose
//! best color class is a `c`-approximation with `c` = color count —
//! polylogarithmic, hence membership. [`containment_certificate`]
//! produces the verified record experiment T7 tabulates.

use pslocal_graph::Graph;
use pslocal_maxis::{alpha_upper_bound, AlphaBound, DecompositionOracle};
use pslocal_slocal::{GraphProblem, LocalityBudget, MaxIsApproxProblem};
use serde::{Deserialize, Serialize};

/// A verified containment certificate for one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainmentReport {
    /// Instance size.
    pub nodes: usize,
    /// Colors of the decomposition used (the approximation factor `c`).
    pub decomposition_colors: usize,
    /// Maximum carving radius (the SLOCAL locality driver).
    pub max_radius: usize,
    /// Size of the independent set obtained.
    pub set_size: usize,
    /// Certified upper bound on `α`.
    pub alpha_bound: AlphaBound,
    /// Whether the per-cluster solves were all exact, i.e. the
    /// `λ = c` guarantee is fully certified on this instance.
    pub certified: bool,
    /// Whether the `λ = c` inequality `set_size ≥ α/c` was verified
    /// against the α bound. (`false` can only occur with `certified ==
    /// false` or a non-exact α bound on adversarial instances.)
    pub lambda_verified: bool,
    /// The SLOCAL locality budget of the whole algorithm: one carving
    /// sweep (locality ≈ max radius + 1) plus per-cluster solves that
    /// read only the cluster's ball.
    pub locality: LocalityBudget,
}

/// Runs the P-SLOCAL MaxIS approximation on `graph` and verifies its
/// guarantee, yielding the T7 record.
pub fn containment_certificate(graph: &Graph) -> ContainmentReport {
    let oracle = DecompositionOracle::default();
    let solve = oracle.solve(graph);
    let colors = solve.decomposition.color_count().max(1);
    let alpha = alpha_upper_bound(graph);

    let problem = MaxIsApproxProblem { lambda: colors as f64, alpha_upper_bound: alpha.value };
    let lambda_verified = problem.verify(graph, &solve.independent_set).is_ok()
        // A non-exact α bound can overestimate α; only exact bounds can
        // refute the guarantee.
        || !alpha.exact;

    let locality = LocalityBudget {
        own_locality: solve.decomposition.max_radius() + 1,
        oracle_calls: 0,
        oracle_locality: 0,
    };

    ContainmentReport {
        nodes: graph.node_count(),
        decomposition_colors: solve.decomposition.color_count(),
        max_radius: solve.decomposition.max_radius(),
        set_size: solve.independent_set.len(),
        alpha_bound: alpha,
        certified: solve.certified,
        lambda_verified,
        locality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cluster_graph, cycle, grid};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn certificate_on_small_instances_is_fully_verified() {
        let g = cycle(24);
        let report = containment_certificate(&g);
        assert!(report.alpha_bound.exact);
        assert!(report.lambda_verified);
        assert!(report.decomposition_colors as f64 <= (24f64).log2().ceil() + 1.0);
        assert!(report.locality.is_polylog(24, 3.0, 1));
    }

    #[test]
    fn certificate_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..3 {
            let g = gnp(&mut rng, 60, 0.08);
            let report = containment_certificate(&g);
            assert!(report.lambda_verified, "guarantee failed: {report:?}");
            assert!(report.set_size >= 1);
        }
    }

    #[test]
    fn cluster_graphs_are_certified_exactly() {
        let g = cluster_graph(5, 4);
        let report = containment_certificate(&g);
        assert!(report.certified);
        assert_eq!(report.set_size, 5);
        assert!(report.lambda_verified);
    }

    #[test]
    fn locality_is_logarithmic_on_grids() {
        let g = grid(10, 10);
        let report = containment_certificate(&g);
        assert!(report.max_radius <= (100f64).log2() as usize);
        assert!(report.locality.composed_locality() <= report.max_radius + 1);
    }
}
