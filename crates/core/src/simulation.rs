//! LOCAL-model simulation of the conflict graph inside the hypergraph.
//!
//! The paper asserts, in one sentence, that "the conflict graph `G_k`
//! can be efficiently simulated in `H` in the LOCAL model". This module
//! makes the claim executable: each triple `(e, v, c)` is *hosted* at
//! the hypergraph vertex `v`, and we measure
//!
//! * **dilation** — the maximum distance, in the primal graph of `H`
//!   (where LOCAL communication happens), between the hosts of two
//!   `G_k`-adjacent triples. Every `E_vertex` edge joins triples with
//!   the *same* host; `E_edge` and `E_color` edges join triples whose
//!   hosts co-occur in a hyperedge, i.e. are primal-adjacent — so the
//!   dilation is at most 1 and one `G_k` round costs one `H` round;
//! * **congestion** — the maximum number of triples any host carries
//!   (`deg_H(v) · k`), which bounds the blow-up of local computation
//!   (message *size* is free in LOCAL, so congestion does not slow the
//!   simulation down; it is reported for completeness).
//!
//! Experiment T8 reports these numbers across instance sizes.

use crate::conflict_graph::ConflictGraph;
use pslocal_graph::algo::BallExtractor;
use pslocal_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The host assignment and its quality measures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of simulated `G_k` nodes.
    pub conflict_nodes: usize,
    /// Number of hosts (vertices of `H`).
    pub hosts: usize,
    /// Maximum triples per host.
    pub max_congestion: usize,
    /// Maximum primal-graph distance between hosts of adjacent triples.
    pub dilation: usize,
    /// Rounds of `H` needed to simulate one round of `G_k`
    /// (= `max(dilation, 1)` — same-host edges still need a round of
    /// local bookkeeping, charged as 1).
    pub rounds_per_conflict_round: usize,
}

/// The host of a conflict-graph node: the hypergraph vertex of its
/// triple.
pub fn host_of(cg: &ConflictGraph, node: NodeId) -> NodeId {
    cg.triple_of(node).vertex
}

/// Builds the host map and measures dilation and congestion against the
/// primal graph of the source hypergraph.
pub fn simulate_in_hypergraph(cg: &ConflictGraph) -> SimulationReport {
    let h = cg.hypergraph();
    let primal: Graph = h.primal_graph();
    let n = h.node_count();

    // Congestion: triples per host.
    let mut load = vec![0usize; n];
    for i in 0..cg.graph().node_count() {
        load[host_of(cg, NodeId::new(i)).index()] += 1;
    }
    let max_congestion = load.iter().copied().max().unwrap_or(0);

    // Dilation: distance between hosts of each conflict edge. All edges
    // are host-equal or primal-adjacent by construction; measure rather
    // than assume (r = 2 BFS would detect any violation).
    let mut extractor = BallExtractor::new(n);
    let mut dilation = 0usize;
    for (a, b) in cg.graph().edges() {
        let (ha, hb) = (host_of(cg, a), host_of(cg, b));
        if ha == hb {
            continue;
        }
        if primal.has_edge(ha, hb) {
            dilation = dilation.max(1);
            continue;
        }
        // Fallback: measure the true distance within a radius-4 ball
        // (a violation of the paper's claim would surface here).
        let ball = extractor.extract(&primal, ha, 4);
        let d = ball
            .vertices
            .iter()
            .position(|&v| v == hb)
            .map(|p| ball.distances[p] as usize)
            .unwrap_or(usize::MAX);
        dilation = dilation.max(d);
    }

    SimulationReport {
        conflict_nodes: cg.graph().node_count(),
        hosts: n,
        max_congestion,
        dilation,
        rounds_per_conflict_round: dilation.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_graph::Hypergraph;
    use rand::SeedableRng;

    #[test]
    fn dilation_is_at_most_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for seed in 0..3 {
            let _ = seed;
            let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(30, 12, 3));
            let cg = ConflictGraph::build(&inst.hypergraph, 3);
            let report = simulate_in_hypergraph(&cg);
            assert!(report.dilation <= 1, "dilation {} exceeds 1", report.dilation);
            assert_eq!(report.rounds_per_conflict_round, 1);
        }
    }

    #[test]
    fn congestion_matches_degree_times_k() {
        let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3], vec![0, 1, 3]]).unwrap();
        let k = 2;
        let cg = ConflictGraph::build(&h, k);
        let report = simulate_in_hypergraph(&cg);
        let expected = h.nodes().map(|v| h.vertex_degree(v) * k).max().unwrap();
        assert_eq!(report.max_congestion, expected);
        assert_eq!(report.conflict_nodes, cg.graph().node_count());
        assert_eq!(report.hosts, 4);
    }

    #[test]
    fn host_of_returns_triple_vertex() {
        let h = Hypergraph::from_edges(3, [vec![0, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        for i in 0..cg.graph().node_count() {
            let node = NodeId::new(i);
            assert_eq!(host_of(&cg, node), cg.triple_of(node).vertex);
        }
    }

    #[test]
    fn single_edge_hypergraph_has_zero_or_one_dilation() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]).unwrap();
        let cg = ConflictGraph::build(&h, 3);
        let report = simulate_in_hypergraph(&cg);
        assert!(report.dilation <= 1);
        // Host 0 and host 1 each carry k = 3 triples.
        assert_eq!(report.max_congestion, 3);
    }
}
