//! The JSONL request/response wire protocol shared by every serving
//! front end.
//!
//! PR 8's `pslocal batch` subcommand introduced a flat-JSON request
//! schema (one object per line on stdin) and a deterministic result
//! schema (one object per line on stdout). The TCP server
//! ([`crate::server`]) speaks exactly the same lines over persistent
//! connections, and the equivalence suites diff the two byte-for-byte
//! — so the codec lives here, once, instead of being copied between
//! front ends.
//!
//! The vendored `serde` stub has no deserializer, so the parser is
//! hand-rolled. The request schema is deliberately **flat**: scalar
//! values only, no nested objects or arrays, which keeps the parser
//! ~80 lines and the failure modes enumerable.
//!
//! # Request schema
//!
//! One JSON object per line. Fields (all optional except `id`):
//!
//! | field         | type   | meaning                                          |
//! |---------------|--------|--------------------------------------------------|
//! | `id`          | string | caller-chosen identifier echoed on the response  |
//! | `n`, `m`, `k` | number | planted-instance shape (default 128, n/2, 4)     |
//! | `seed`        | number | instance + oracle RNG seed (default `0xC0FFEE`)  |
//! | `epsilon`     | number | planted-instance uniformity slack (default 0.5)  |
//! | `oracle`      | string | comma-separated fallback chain (default `greedy`)|
//! | `kernel`      | string | `auto` \| `csr` \| `bitset`                      |
//! | `oracle_cache`| bool   | memoize whole-phase oracle answers               |
//! | `deadline_ms` | number | per-request deadline from submission             |
//! | `faults`      | string | per-call fault script for the primary oracle     |
//!
//! # Response schema
//!
//! One JSON object per request, in completion order. Only
//! deterministic fields appear — timing goes to telemetry — so result
//! streams are byte-comparable across worker counts and front ends:
//!
//! ```text
//! {"id":..,"outcome":"ok","phases":P,"set_size":S,"colors":C}
//! {"id":..,"outcome":"deadline_exceeded","phase":P}
//! {"id":..,"outcome":"rejected"}
//! {"id":..,"outcome":"failed","error":..}
//! ```
//!
//! The server adds two typed lines of its own, both load-shedding
//! signals (the protocol's 503s): `{"outcome":"overloaded",...}` when
//! the connection cap refuses a socket, and
//! `{"outcome":"bad_request",...}` for an unparseable line.

use crate::reduction::ReductionConfig;
use crate::resilient::ResilientConfig;
use crate::service::{BoxedOracle, RequestOutcome, ServiceRequest, ServiceResponse};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::KernelStrategy;
use pslocal_maxis::{
    CliqueRemovalOracle, DecompositionOracle, ExactOracle, FaultKind, FaultPlan, FaultyOracle,
    GreedyOracle, LubyOracle,
};
use rand::SeedableRng;
use std::time::Duration;

/// One field value of a flat request object: a string, or a raw
/// unquoted token (number / bool) parsed per field.
enum JsonValue {
    Str(String),
    Raw(String),
}

/// Skips JSON whitespace.
fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

/// Parses a JSON string literal (the opening `"` still pending).
fn parse_json_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a JSON string".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                other => return Err(format!("unsupported string escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated JSON string".to_string()),
        }
    }
}

/// Parses one *flat* JSON object (scalar values only — nested objects
/// and arrays are rejected).
fn parse_flat_json(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected a JSON object ('{' ... '}')".to_string());
    }
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_json_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => JsonValue::Str(parse_json_string(&mut chars)?),
                Some(c) if *c == '-' || *c == '+' || c.is_ascii_alphanumeric() => {
                    let mut token = String::new();
                    while let Some(&c) = chars.peek() {
                        if c == ',' || c == '}' || c.is_whitespace() {
                            break;
                        }
                        token.push(c);
                        chars.next();
                    }
                    JsonValue::Raw(token)
                }
                other => {
                    return Err(format!(
                        "unsupported value {other:?} for key {key:?} (flat schema: scalars only)"
                    ))
                }
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(trailing) = chars.next() {
        return Err(format!("trailing input {trailing:?} after the JSON object"));
    }
    Ok(fields)
}

/// Typed accessors over one parsed request object.
struct RequestFields(Vec<(String, JsonValue)>);

impl RequestFields {
    fn find(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.find(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(JsonValue::Raw(_)) => Err(format!("field {key:?} must be a JSON string")),
        }
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.find(key) {
            None => Ok(None),
            Some(JsonValue::Raw(raw)) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("cannot parse field {key:?} value {raw:?}")),
            Some(JsonValue::Str(_)) => Err(format!("field {key:?} must be a JSON number")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.find(key) {
            None => Ok(false),
            Some(JsonValue::Raw(raw)) if raw == "true" => Ok(true),
            Some(JsonValue::Raw(raw)) if raw == "false" => Ok(false),
            _ => Err(format!("field {key:?} must be true or false")),
        }
    }
}

/// Escapes a string for embedding in a JSON result line.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a `faults` script: comma-separated per-call fault tokens for
/// the request's primary oracle (`-` = behave).
pub fn parse_fault_script(spec: &str) -> Result<Vec<Option<FaultKind>>, String> {
    spec.split(',')
        .map(|token| match token.trim() {
            "" | "-" | "ok" => Ok(None),
            "panic" => Ok(Some(FaultKind::Panic)),
            "invalid-set" => Ok(Some(FaultKind::InvalidSet)),
            "empty-set" => Ok(Some(FaultKind::EmptySet)),
            "under-deliver" => Ok(Some(FaultKind::UnderDeliver)),
            t => match t.strip_prefix("stall:") {
                Some(steps) => steps
                    .parse::<usize>()
                    .map(|s| Some(FaultKind::Stall(s)))
                    .map_err(|_| format!("cannot parse stall step count in {t:?}")),
                None => Err(format!(
                    "unknown fault {t:?} (- | panic | invalid-set | empty-set | \
                     under-deliver | stall:N)"
                )),
            },
        })
        .collect()
}

/// Constructs the named oracle, boxed for a service thread boundary
/// (`Send + Sync`). Names: `exact`, `greedy`, `luby`, `clique-removal`,
/// `decomposition`.
pub fn boxed_oracle_by_name(name: &str, seed: u64) -> Result<BoxedOracle, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

/// Parses a kernel name (`auto` | `csr` | `bitset`) into a
/// [`KernelStrategy`].
pub fn kernel_by_name(name: &str) -> Result<KernelStrategy, String> {
    Ok(match name {
        "auto" => KernelStrategy::Auto,
        "csr" => KernelStrategy::Csr,
        "bitset" => KernelStrategy::Bitset,
        other => return Err(format!("unknown kernel {other:?} (auto | csr | bitset)")),
    })
}

/// Builds one [`ServiceRequest`] from a request line (see the
/// [module docs](self) for the schema). `default_deadline` applies
/// when the line carries no `deadline_ms` of its own.
///
/// # Errors
///
/// A human-readable description of the first malformed field. The
/// caller decides whether that aborts the batch (`pslocal batch`) or
/// becomes a `bad_request` response line (the server).
pub fn parse_request(
    line: &str,
    default_deadline: Option<Duration>,
) -> Result<ServiceRequest, String> {
    let fields = RequestFields(parse_flat_json(line)?);
    let id = fields.str("id")?.ok_or("missing required field \"id\"")?.to_string();
    let n: usize = fields.num("n")?.unwrap_or(128);
    let m: usize = fields.num("m")?.unwrap_or(n / 2);
    let k: usize = fields.num("k")?.unwrap_or(4);
    let seed: u64 = fields.num("seed")?.unwrap_or(0xC0FFEE);
    let epsilon: f64 = fields.num("epsilon")?.unwrap_or(0.5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });

    let mut chain: Vec<BoxedOracle> = fields
        .str("oracle")?
        .unwrap_or("greedy")
        .split(',')
        .map(|name| boxed_oracle_by_name(name.trim(), seed))
        .collect::<Result<_, _>>()?;
    if let Some(spec) = fields.str("faults")? {
        let script = parse_fault_script(spec)?;
        let primary = chain.remove(0);
        chain.insert(0, Box::new(FaultyOracle::new(primary, FaultPlan::scripted(script))));
    }

    let mut base = ReductionConfig::new(k);
    base.kernel = kernel_by_name(fields.str("kernel")?.unwrap_or("auto"))?;
    base.oracle_cache = fields.bool("oracle_cache")?;
    let config = ResilientConfig { base, ..ResilientConfig::new(k) };

    let mut request = ServiceRequest::new(id, inst.hypergraph, chain, config);
    if let Some(ms) =
        fields.num::<u64>("deadline_ms")?.or(default_deadline.map(|d| d.as_millis() as u64))
    {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    Ok(request)
}

/// Wire value of `outcome` for a completed request.
pub const OUTCOME_OK: &str = "ok";
/// Wire value of `outcome` for a request the admission queue refused.
pub const OUTCOME_REJECTED: &str = "rejected";
/// Wire value of `outcome` for a request that ran out of deadline.
pub const OUTCOME_DEADLINE_EXCEEDED: &str = "deadline_exceeded";
/// Wire value of `outcome` for a request whose reduction errored.
pub const OUTCOME_FAILED: &str = "failed";
/// Wire value of `outcome` when the connection cap sheds a socket.
pub const OUTCOME_OVERLOADED: &str = "overloaded";
/// Wire value of `outcome` for an unparseable request line.
pub const OUTCOME_BAD_REQUEST: &str = "bad_request";

/// Renders one completed request as its JSONL result line. Only
/// deterministic fields appear here — timing goes to telemetry — so
/// result streams are byte-comparable across worker counts and front
/// ends.
pub fn response_line(response: &ServiceResponse) -> String {
    let id = json_escape(&response.id);
    match &response.outcome {
        RequestOutcome::Ok { phases, set_size, colors } => format!(
            "{{\"id\":\"{id}\",\"outcome\":\"ok\",\"phases\":{phases},\
             \"set_size\":{set_size},\"colors\":{colors}}}"
        ),
        RequestOutcome::DeadlineExceeded { phase } => {
            format!("{{\"id\":\"{id}\",\"outcome\":\"deadline_exceeded\",\"phase\":{phase}}}")
        }
        RequestOutcome::Failed { error } => format!(
            "{{\"id\":\"{id}\",\"outcome\":\"failed\",\"error\":\"{}\"}}",
            json_escape(error)
        ),
    }
}

/// The typed load-shedding line for a request the admission queue
/// refused — the protocol's `503`: the request was **not** run and
/// will not produce any other line.
pub fn rejected_line(id: &str) -> String {
    format!("{{\"id\":\"{}\",\"outcome\":\"rejected\"}}", json_escape(id))
}

/// The typed error line for an input line that does not parse as a
/// request. Only the server emits this (the batch front end aborts
/// with a line number instead, since its input is a finite file).
pub fn bad_request_line(error: &str) -> String {
    format!("{{\"outcome\":\"bad_request\",\"error\":\"{}\"}}", json_escape(error))
}

/// The typed overload line the server writes (and then closes the
/// socket) when its connection cap is reached: load shedding at the
/// accept boundary, never unbounded buffering.
pub fn overloaded_line(max_connections: usize) -> String {
    format!(
        "{{\"outcome\":\"overloaded\",\"error\":\"connection limit {max_connections} reached\"}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request_line() {
        let req = parse_request(
            r#"{"id":"r0","n":48,"m":20,"k":3,"seed":7,"oracle":"greedy,exact","kernel":"csr","oracle_cache":true,"deadline_ms":250}"#,
            None,
        )
        .expect("parses");
        assert_eq!(req.id, "r0");
        assert_eq!(req.chain.len(), 2);
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
        assert!(req.config.base.oracle_cache);
    }

    #[test]
    fn default_deadline_applies_only_without_an_explicit_one() {
        let with_default =
            parse_request(r#"{"id":"a"}"#, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(with_default.deadline, Some(Duration::from_millis(100)));
        let explicit =
            parse_request(r#"{"id":"a","deadline_ms":5}"#, Some(Duration::from_millis(100)))
                .unwrap();
        assert_eq!(explicit.deadline, Some(Duration::from_millis(5)));
        let none = parse_request(r#"{"id":"a"}"#, None).unwrap();
        assert_eq!(none.deadline, None);
    }

    #[test]
    fn rejects_malformed_lines_with_field_context() {
        assert!(parse_request("not json", None).is_err());
        assert!(parse_request(r#"{"n":32}"#, None).unwrap_err().contains("\"id\""));
        assert!(parse_request(r#"{"id":42}"#, None).is_err());
        assert!(parse_request(r#"{"id":"x","faults":"zap"}"#, None)
            .unwrap_err()
            .contains("unknown fault"));
        assert!(parse_request(r#"{"id":"x","oracle":"psychic"}"#, None)
            .unwrap_err()
            .contains("unknown oracle"));
        assert!(parse_request(r#"{"id":"x","kernel":"quantum"}"#, None)
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(parse_request(r#"{"id":"x","nested":{"a":1}}"#, None).is_err());
    }

    #[test]
    fn result_lines_are_stable() {
        let ok = ServiceResponse {
            id: "a\"b".to_string(),
            outcome: RequestOutcome::Ok { phases: 2, set_size: 30, colors: 6 },
            queue_wait: Duration::ZERO,
            latency: Duration::from_millis(3),
        };
        assert_eq!(
            response_line(&ok),
            r#"{"id":"a\"b","outcome":"ok","phases":2,"set_size":30,"colors":6}"#
        );
        assert_eq!(rejected_line("r9"), r#"{"id":"r9","outcome":"rejected"}"#);
        assert_eq!(bad_request_line("boom\n"), r#"{"outcome":"bad_request","error":"boom\n"}"#);
        assert_eq!(
            overloaded_line(8),
            r#"{"outcome":"overloaded","error":"connection limit 8 reached"}"#
        );
    }
}
