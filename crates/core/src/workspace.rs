//! Reusable per-run scratch for the multi-phase reduction loop.
//!
//! Every phase of the Theorem 1.1 reduction restricts the conflict
//! graph, runs the oracle, and commits — a loop whose steady state
//! used to allocate a fresh CSR (offsets + targets), a fresh keep-list,
//! and fresh oracle scratch per phase. [`PhaseWorkspace`] owns all of
//! that once per *run*: the trusting and resilient drivers thread it
//! through [`ConflictGraph::restrict_to_edges_in`] (CSR arena +
//! keep-list), the dense oracle dispatch
//! ([`MaxIsOracle::independent_set_dense`] gets the
//! [`BitsetScratch`]), and the optional fingerprint-keyed oracle memo
//! (`OracleCache`), so later phases recycle the earlier phases'
//! buffers instead of hitting the allocator.
//!
//! A workspace carries **no semantic state**: running two reductions
//! back-to-back through one workspace yields byte-identical outcomes
//! to two fresh-allocation runs (the workspace-reuse tests pin this).
//! The one deliberate exception is the oracle memo, which only ever
//! returns a set the oracle itself produced for a graph with the same
//! fingerprint — and is consulted only when
//! [`ReductionConfig::oracle_cache`] is explicitly enabled.
//!
//! [`ConflictGraph::restrict_to_edges_in`]: crate::ConflictGraph::restrict_to_edges
//! [`MaxIsOracle::independent_set_dense`]: pslocal_maxis::MaxIsOracle::independent_set_dense
//! [`ReductionConfig::oracle_cache`]: crate::ReductionConfig::oracle_cache

use crate::conflict_graph::ConflictGraph;
use pslocal_graph::{csr, BitsetScratch, IndependentSet, NodeId};

/// Default number of memoized phase answers `OracleCache` retains.
/// Phases see a shrinking chain of restrictions, so a repeat — the
/// memo's whole reason to exist — is almost always recent.
const CACHE_CAPACITY: usize = 16;

/// Per-run scratch buffers for the phase loop — see the module docs.
///
/// Construct once ([`PhaseWorkspace::new`] or `Default`), lend to any
/// number of reduction runs via
/// [`reduce_cf_to_maxis_with_workspace`](crate::reduction::reduce_cf_to_maxis_with_workspace).
#[derive(Debug, Default)]
pub struct PhaseWorkspace {
    /// CSR induced-subgraph build arena: the position map and retired
    /// offsets/targets buffers `csr::induced_sorted_in` fills the next
    /// restricted graph into.
    pub(crate) arena: csr::InducedArena,
    /// The restriction keep-list (surviving triple nodes), rebuilt in
    /// place each phase.
    pub(crate) nodes: Vec<NodeId>,
    /// Word-parallel scratch for the dense oracle kernels.
    pub(crate) scratch: BitsetScratch,
    /// Fingerprint-keyed memo of whole-phase oracle answers.
    pub(crate) cache: OracleCache,
}

impl PhaseWorkspace {
    /// An empty workspace; buffers grow to steady-state size during the
    /// first run and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A small LRU memo of whole-phase oracle answers, keyed by the
/// conflict graph's structural fingerprint.
///
/// A hit is only trusted after re-verifying independence on the
/// *current* graph (`ConflictGraph::verify_independent`) — the 64-bit
/// fingerprint makes a collision astronomically unlikely, and the
/// verification keeps even that case from corrupting a run. A stored
/// set that fails verification is a [`CacheLookup::Reject`]: the
/// colliding entry is **evicted** (it answers for a graph that no
/// longer hashes to this slot's meaning) and the caller falls through
/// to the oracle, counting an `OracleCacheRejects`.
#[derive(Debug, Default)]
pub(crate) struct OracleCache {
    /// `(fingerprint, oracle answer)`, least-recently-used first.
    entries: Vec<(u64, Vec<NodeId>)>,
}

/// Outcome of a verified cache lookup — see
/// [`OracleCache::get_verified`].
#[derive(Debug)]
pub(crate) enum CacheLookup {
    /// The stored set verified against the current graph.
    Hit(IndependentSet),
    /// Fingerprint matched but the stored set is not independent in the
    /// current graph (a collision); the entry has been evicted.
    Reject,
    /// No entry for this fingerprint.
    Miss,
}

impl OracleCache {
    /// Looks up `fingerprint` and re-verifies the stored set against
    /// `cg`. A verified hit refreshes the entry's LRU position; a
    /// failed verification evicts the colliding entry and reports
    /// [`CacheLookup::Reject`] so the caller can fall through to the
    /// oracle.
    pub(crate) fn get_verified(&mut self, fingerprint: u64, cg: &ConflictGraph) -> CacheLookup {
        let Some(pos) = self.entries.iter().position(|(fp, _)| *fp == fingerprint) else {
            return CacheLookup::Miss;
        };
        let set = IndependentSet::new_unchecked(self.entries[pos].1.clone());
        if cg.verify_independent(&set) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            CacheLookup::Hit(set)
        } else {
            self.entries.remove(pos);
            CacheLookup::Reject
        }
    }

    /// Raw unverified lookup, refreshing the LRU position on a hit
    /// (tests only — drivers go through
    /// [`get_verified`](Self::get_verified)).
    #[cfg(test)]
    pub(crate) fn get(&mut self, fingerprint: u64) -> Option<Vec<NodeId>> {
        let pos = self.entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let entry = self.entries.remove(pos);
        let set = entry.1.clone();
        self.entries.push(entry);
        Some(set)
    }

    /// Records `set` as the oracle's answer for `fingerprint`, evicting
    /// the least-recently-used entry beyond capacity.
    pub(crate) fn insert(&mut self, fingerprint: u64, set: Vec<NodeId>) {
        if let Some(pos) = self.entries.iter().position(|(fp, _)| *fp == fingerprint) {
            self.entries.remove(pos);
        }
        self.entries.push((fingerprint, set));
        if self.entries.len() > CACHE_CAPACITY {
            self.entries.remove(0);
        }
    }

    /// Number of memoized answers (tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::Hypergraph;

    fn set_of(vs: &[usize]) -> Vec<NodeId> {
        vs.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn verified_lookup_evicts_colliding_entry() {
        // A conflict graph whose block 0 is a clique: nodes 0 and 1 are
        // adjacent, so a cached "answer" containing both cannot be
        // independent — exactly what a fingerprint collision would
        // smuggle in.
        let h = Hypergraph::from_edges(3, [vec![0, 1, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        let fp = cg.fingerprint();
        let mut c = OracleCache::default();
        c.insert(fp, set_of(&[0, 1]));
        match c.get_verified(fp, &cg) {
            CacheLookup::Reject => {}
            other => panic!("colliding entry must be rejected, got {other:?}"),
        }
        // The poisoned entry is gone: the next lookup is a clean miss,
        // not a repeat rejection.
        assert!(matches!(c.get_verified(fp, &cg), CacheLookup::Miss));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn verified_lookup_returns_and_retains_good_entry() {
        let h = Hypergraph::from_edges(3, [vec![0, 1, 2]]).unwrap();
        let cg = ConflictGraph::build(&h, 2);
        let fp = cg.fingerprint();
        let mut c = OracleCache::default();
        c.insert(fp, set_of(&[0]));
        match c.get_verified(fp, &cg) {
            CacheLookup::Hit(set) => assert_eq!(set.vertices(), set_of(&[0]).as_slice()),
            other => panic!("verified entry must hit, got {other:?}"),
        }
        assert_eq!(c.len(), 1, "a verified hit stays cached");
    }

    #[test]
    fn cache_round_trips_and_misses() {
        let mut c = OracleCache::default();
        assert_eq!(c.get(1), None);
        c.insert(1, set_of(&[0, 2]));
        assert_eq!(c.get(1), Some(set_of(&[0, 2])));
        assert_eq!(c.get(2), None);
        // Re-inserting the same key replaces, not duplicates.
        c.insert(1, set_of(&[5]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(set_of(&[5])));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut c = OracleCache::default();
        for fp in 0..CACHE_CAPACITY as u64 {
            c.insert(fp, set_of(&[fp as usize]));
        }
        assert_eq!(c.len(), CACHE_CAPACITY);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(c.get(0).is_some());
        c.insert(999, set_of(&[7]));
        assert_eq!(c.len(), CACHE_CAPACITY);
        assert!(c.get(0).is_some(), "recently-touched entry survives");
        assert_eq!(c.get(1), None, "LRU entry was evicted");
        assert!(c.get(999).is_some());
    }
}
