//! Reusable per-run scratch for the multi-phase reduction loop.
//!
//! Every phase of the Theorem 1.1 reduction restricts the conflict
//! graph, runs the oracle, and commits — a loop whose steady state
//! used to allocate a fresh CSR (offsets + targets), a fresh keep-list,
//! and fresh oracle scratch per phase. [`PhaseWorkspace`] owns all of
//! that once per *run*: the trusting and resilient drivers thread it
//! through [`ConflictGraph::restrict_to_edges_in`] (CSR arena +
//! keep-list), the dense oracle dispatch
//! ([`MaxIsOracle::independent_set_dense`] gets the
//! [`BitsetScratch`]), and the optional fingerprint-keyed oracle memo
//! (`OracleCache`), so later phases recycle the earlier phases'
//! buffers instead of hitting the allocator.
//!
//! A workspace carries **no semantic state**: running two reductions
//! back-to-back through one workspace yields byte-identical outcomes
//! to two fresh-allocation runs (the workspace-reuse tests pin this).
//! The one deliberate exception is the oracle memo, which only ever
//! returns a set the oracle itself produced for a graph with the same
//! fingerprint — and is consulted only when
//! [`ReductionConfig::oracle_cache`] is explicitly enabled.
//!
//! [`ConflictGraph::restrict_to_edges_in`]: crate::ConflictGraph::restrict_to_edges
//! [`MaxIsOracle::independent_set_dense`]: pslocal_maxis::MaxIsOracle::independent_set_dense
//! [`ReductionConfig::oracle_cache`]: crate::ReductionConfig::oracle_cache

use pslocal_graph::{csr, BitsetScratch, NodeId};

/// Default number of memoized phase answers `OracleCache` retains.
/// Phases see a shrinking chain of restrictions, so a repeat — the
/// memo's whole reason to exist — is almost always recent.
const CACHE_CAPACITY: usize = 16;

/// Per-run scratch buffers for the phase loop — see the module docs.
///
/// Construct once ([`PhaseWorkspace::new`] or `Default`), lend to any
/// number of reduction runs via
/// [`reduce_cf_to_maxis_with_workspace`](crate::reduction::reduce_cf_to_maxis_with_workspace).
#[derive(Debug, Default)]
pub struct PhaseWorkspace {
    /// CSR induced-subgraph build arena: the position map and retired
    /// offsets/targets buffers `csr::induced_sorted_in` fills the next
    /// restricted graph into.
    pub(crate) arena: csr::InducedArena,
    /// The restriction keep-list (surviving triple nodes), rebuilt in
    /// place each phase.
    pub(crate) nodes: Vec<NodeId>,
    /// Word-parallel scratch for the dense oracle kernels.
    pub(crate) scratch: BitsetScratch,
    /// Fingerprint-keyed memo of whole-phase oracle answers.
    pub(crate) cache: OracleCache,
}

impl PhaseWorkspace {
    /// An empty workspace; buffers grow to steady-state size during the
    /// first run and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A small LRU memo of whole-phase oracle answers, keyed by the
/// conflict graph's structural fingerprint.
///
/// A hit is only trusted after the driver re-verifies independence on
/// the *current* graph (`ConflictGraph::verify_independent`) — the
/// 64-bit fingerprint makes a collision astronomically unlikely, and
/// the verification keeps even that case from corrupting a run.
#[derive(Debug, Default)]
pub(crate) struct OracleCache {
    /// `(fingerprint, oracle answer)`, least-recently-used first.
    entries: Vec<(u64, Vec<NodeId>)>,
}

impl OracleCache {
    /// Looks up `fingerprint`, refreshing its LRU position on a hit.
    pub(crate) fn get(&mut self, fingerprint: u64) -> Option<Vec<NodeId>> {
        let pos = self.entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let entry = self.entries.remove(pos);
        let set = entry.1.clone();
        self.entries.push(entry);
        Some(set)
    }

    /// Records `set` as the oracle's answer for `fingerprint`, evicting
    /// the least-recently-used entry beyond capacity.
    pub(crate) fn insert(&mut self, fingerprint: u64, set: Vec<NodeId>) {
        if let Some(pos) = self.entries.iter().position(|(fp, _)| *fp == fingerprint) {
            self.entries.remove(pos);
        }
        self.entries.push((fingerprint, set));
        if self.entries.len() > CACHE_CAPACITY {
            self.entries.remove(0);
        }
    }

    /// Number of memoized answers (tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(vs: &[usize]) -> Vec<NodeId> {
        vs.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn cache_round_trips_and_misses() {
        let mut c = OracleCache::default();
        assert_eq!(c.get(1), None);
        c.insert(1, set_of(&[0, 2]));
        assert_eq!(c.get(1), Some(set_of(&[0, 2])));
        assert_eq!(c.get(2), None);
        // Re-inserting the same key replaces, not duplicates.
        c.insert(1, set_of(&[5]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(set_of(&[5])));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut c = OracleCache::default();
        for fp in 0..CACHE_CAPACITY as u64 {
            c.insert(fp, set_of(&[fp as usize]));
        }
        assert_eq!(c.len(), CACHE_CAPACITY);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(c.get(0).is_some());
        c.insert(999, set_of(&[7]));
        assert_eq!(c.len(), CACHE_CAPACITY);
        assert!(c.get(0).is_some(), "recently-touched entry survives");
        assert_eq!(c.get(1), None, "LRU entry was evicted");
        assert!(c.get(999).is_some());
    }
}
