//! A hardened Theorem 1.1 reduction driver that survives misbehaving
//! oracles.
//!
//! [`reduce_cf_to_maxis`](crate::reduce_cf_to_maxis) *trusts* its
//! oracle: the paper's analysis assumes every call returns a genuine
//! independent set of size `≥ |E_i|/λ`. [`reduce_cf_resilient`] drops
//! that trust and re-validates every answer before committing a phase:
//!
//! * **independence** — range check plus a full adjacency re-check of
//!   the claimed set against the phase's conflict graph;
//! * **delivery** — the Lemma 2.1 quota `|I_i| ≥ ⌈|E_i|/λ⌉` against
//!   the calling oracle's *certified* λ (skipped for heuristics, whose
//!   λ claims nothing);
//! * **liveness** — panics are caught and isolated
//!   ([`std::panic::catch_unwind`]); stalls reported through
//!   [`MaxIsOracle::stalled_steps`] are billed against a per-attempt
//!   step budget that doubles on every retry (exponential backoff).
//!
//! A rejected answer costs one attempt; attempts walk a configurable
//! **fallback chain** (typically `primary → GreedyOracle`) with
//! [`ResilientConfig::max_retries`] retries per oracle. Every rejection
//! is recorded as a [`FaultEvent`]. If a phase exhausts the whole
//! chain, the driver fails *with salvage*: the
//! [`PartialOutcome`] carries the verified partial coloring, the still
//! unhappy edges, and the per-phase records accumulated so far.
//!
//! The driver's contract — the chaos-test invariant — is:
//!
//! > For **every** fault schedule, `reduce_cf_resilient` either returns
//! > a verified conflict-free multicoloring or a typed error with a
//! > salvageable partial outcome. It never panics and never returns an
//! > invalid coloring. With no faults it reproduces
//! > [`reduce_cf_to_maxis`](crate::reduce_cf_to_maxis) exactly
//! > (byte-identical [`PhaseRecord`]s).

use crate::components::ComponentExecutor;
use crate::conflict_graph::{ConflictGraph, ConflictGraphOptions};
use crate::recovery::{
    self, Checkpointing, DriverKind, JournalPhase, PhaseJournal, RecoveryReport, StoredFaultEvent,
};
use crate::reduction::{
    commit_phase, decay_allowed, lambda_for_phase, lemma_2_1_quota, oracle_locality, PhaseRecord,
    ReductionConfig, ReductionError, ReductionOutcome,
};
use crate::workspace::PhaseWorkspace;
use pslocal_cfcolor::{checker, Multicoloring};
use pslocal_graph::{Graph, HyperedgeId, Hypergraph, IndependentSet};
use pslocal_maxis::{ApproxGuarantee, CrashPoint, CrashSignal, MaxIsOracle};
use pslocal_slocal::LocalityBudget;
use pslocal_telemetry::{names, span, Counter, Histogram, Sink, Telemetry};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Instant;

/// The stall budget of attempt `retry` under exponential backoff:
/// `base · 2^retry`, **saturating at `usize::MAX`** once the doubling
/// would overflow. The naive `base << retry` wraps (to 0 in release
/// builds once the set bits shift out), after which every oracle call
/// is falsely rejected as stalled and the fallback chain is burned for
/// nothing; saturation keeps the budget monotone non-decreasing in
/// `retry`, which is what backoff means.
pub fn stall_budget(base: usize, retry: usize) -> usize {
    if base == 0 {
        // Zero tolerance stays zero: backoff multiplies the budget, and
        // 0 · 2^retry = 0.
        return 0;
    }
    // `base << retry` is lossless iff every set bit survives, i.e. the
    // shift fits within `base`'s leading zeros; `checked_shl` alone is
    // not enough (it only rejects shifts ≥ the bit width, not shifts
    // that discard set bits).
    if retry <= base.leading_zeros() as usize {
        base << retry
    } else {
        usize::MAX
    }
}

/// Why the resilient driver rejected (or routed around) an oracle call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultEventKind {
    /// The call panicked; the panic was caught and isolated.
    OraclePanicked,
    /// The claimed independent set failed re-validation (out-of-range
    /// vertex or adjacent pair).
    OracleInvalidOutput,
    /// The set was valid but below the Lemma 2.1 quota its certified λ
    /// promises.
    OracleUnderDelivered {
        /// Vertices actually delivered.
        delivered: usize,
        /// The quota `⌈|E_i|/λ⌉`.
        required: usize,
    },
    /// The call stalled longer than the attempt's step budget.
    OracleStalled {
        /// Steps the call stalled for.
        steps: usize,
        /// The budget it exceeded.
        tolerance: usize,
    },
    /// The driver moved on to the next oracle in the fallback chain.
    FallbackEngaged,
    /// A phase ran out of oracles and retries (terminal; mirrored by
    /// [`ReductionError::RetriesExhausted`]).
    RetriesExhausted {
        /// Attempts spent in the phase.
        attempts: usize,
    },
}

impl fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEventKind::OraclePanicked => write!(f, "oracle-panicked"),
            FaultEventKind::OracleInvalidOutput => write!(f, "oracle-invalid-output"),
            FaultEventKind::OracleUnderDelivered { delivered, required } => {
                write!(f, "oracle-under-delivered ({delivered} < {required})")
            }
            FaultEventKind::OracleStalled { steps, tolerance } => {
                write!(f, "oracle-stalled ({steps} > {tolerance})")
            }
            FaultEventKind::FallbackEngaged => write!(f, "fallback-engaged"),
            FaultEventKind::RetriesExhausted { attempts } => {
                write!(f, "retries-exhausted ({attempts} attempts)")
            }
        }
    }
}

/// One entry of the resilient driver's fault log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Phase the event occurred in.
    pub phase: usize,
    /// 0-based attempt index within the phase (on the parallel path,
    /// within the component).
    pub attempt: usize,
    /// Name of the oracle involved.
    pub oracle: &'static str,
    /// The conflict-graph component the event occurred in, when the
    /// phase ran component-parallel; `None` on the serial path.
    pub component: Option<usize>,
    /// What happened.
    pub kind: FaultEventKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase {}", self.phase)?;
        if let Some(c) = self.component {
            write!(f, " component {c}")?;
        }
        write!(f, " attempt {} [{}]: {}", self.attempt, self.oracle, self.kind)
    }
}

/// Configuration of [`reduce_cf_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// The underlying reduction configuration (promised `k`, optional λ
    /// override, phase cap).
    pub base: ReductionConfig,
    /// Retries per oracle per phase *beyond* the first attempt.
    pub max_retries: usize,
    /// Base step budget for stalled calls; attempt `j` of an oracle
    /// tolerates `stall_tolerance << j` steps (exponential backoff).
    pub stall_tolerance: usize,
}

impl ResilientConfig {
    /// Default resilience (2 retries, stall tolerance 8) for a promised
    /// palette size `k`.
    pub fn new(k: usize) -> Self {
        ResilientConfig { base: ReductionConfig::new(k), max_retries: 2, stall_tolerance: 8 }
    }
}

/// What could be salvaged from a failed resilient run.
///
/// The coloring is *verified partial progress*: every phase that
/// committed did so with a re-validated independent set, so the
/// coloring is conflict-free on all edges outside
/// [`residual_edges`](Self::residual_edges).
#[derive(Debug, Clone)]
pub struct PartialOutcome {
    /// The partial multicoloring built by the committed phases.
    pub coloring: Multicoloring,
    /// Hyperedges still unhappy under the partial coloring.
    pub residual_edges: Vec<HyperedgeId>,
    /// Per-phase records of the committed phases.
    pub records: Vec<PhaseRecord>,
}

/// Successful resilient run: the base outcome plus fault accounting.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The verified reduction outcome (same shape as the trusting
    /// driver's).
    pub reduction: ReductionOutcome,
    /// Every fault observed and routed around, in order.
    pub fault_log: Vec<FaultEvent>,
    /// Attempts beyond the first across all phases.
    pub retries: usize,
    /// Times the driver fell back to a later oracle in the chain.
    pub fallbacks_engaged: usize,
}

/// Failed resilient run: the typed error, the salvage, and the log.
#[derive(Debug, Clone)]
pub struct ResilientFailure {
    /// Why the run failed.
    pub error: ReductionError,
    /// Verified partial progress at the point of failure.
    pub partial: PartialOutcome,
    /// Every fault observed, in order.
    pub fault_log: Vec<FaultEvent>,
}

impl fmt::Display for ResilientFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} faults logged, {} edges salvageable)",
            self.error,
            self.fault_log.len(),
            self.partial.residual_edges.len()
        )
    }
}

impl Error for ResilientFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// Validates a claimed independent set against the graph the oracle
/// was called on — the whole conflict graph on the serial path, one
/// component's induced subgraph on the parallel path. The range check
/// must come first: `is_independent_set` panics on out-of-range
/// vertices.
fn validates_independence(graph: &Graph, set: &IndependentSet) -> bool {
    let n = graph.node_count();
    set.vertices().iter().all(|v| v.index() < n) && graph.is_independent_set(set.vertices())
}

/// Runs the Theorem 1.1 reduction against an untrusted oracle
/// **chain** (`chain[0]` is the primary; later entries are fallbacks,
/// tried left to right).
///
/// Every oracle answer is re-validated before the phase commits; see
/// the [module docs](self) for the validation, retry, and salvage
/// semantics. With well-behaved oracles the result's
/// [`reduction`](ResilientOutcome::reduction) is identical to
/// [`reduce_cf_to_maxis`](crate::reduce_cf_to_maxis)'s on the primary.
///
/// # Errors
///
/// [`ResilientFailure`] wraps the [`ReductionError`] with the
/// salvageable [`PartialOutcome`] and the fault log. An empty `chain`
/// fails immediately with
/// [`ReductionError::RetriesExhausted`]`{ phase: 0, attempts: 0 }`.
// The large `Err` variant is the point: it carries the salvaged
// partial coloring and the fault log for post-mortem use.
#[allow(clippy::result_large_err)]
pub fn reduce_cf_resilient(
    h: &Hypergraph,
    chain: &[&dyn MaxIsOracle],
    config: ResilientConfig,
) -> Result<ResilientOutcome, ResilientFailure> {
    reduce_cf_resilient_traced(h, chain, config, &Telemetry::disabled())
}

/// [`reduce_cf_resilient`] under a telemetry pipeline: the same
/// `reduction` / `phase` / `oracle` / `commit` / `restrict` span tree
/// as the trusting driver's traced variant, except each phase carries
/// one `oracle` span **per attempt** (indexed by attempt number), and
/// the `retries` / `fallbacks` / `stalled_steps` / `fault_events`
/// counters mirror the fault log. With a disabled pipeline this is
/// exactly `reduce_cf_resilient`.
///
/// # Errors
///
/// See [`reduce_cf_resilient`].
#[allow(clippy::result_large_err)]
pub fn reduce_cf_resilient_traced<S: Sink>(
    h: &Hypergraph,
    chain: &[&dyn MaxIsOracle],
    config: ResilientConfig,
    tel: &Telemetry<S>,
) -> Result<ResilientOutcome, ResilientFailure> {
    reduce_resilient_inner(h, chain, config, tel, None, &mut PhaseWorkspace::new(), None)
        .map(|(outcome, _)| outcome)
}

/// [`reduce_cf_resilient_traced`] lending a caller-owned
/// [`PhaseWorkspace`] and honoring an optional wall-clock `deadline` —
/// the batch service's entry point (`crate::service`), whose workers
/// hold one long-lived workspace each and cancel overdue requests
/// cooperatively.
///
/// The deadline is checked at every **phase boundary** (before the
/// phase's oracle work starts), never mid-call: an overdue run fails
/// with [`ReductionError::DeadlineExceeded`] and the usual salvage — a
/// whole number of committed, verified phases. A workspace carries no
/// semantic state, so the next request through the same workspace is
/// unaffected (pinned by the batch deadline tests).
///
/// # Errors
///
/// See [`reduce_cf_resilient`], plus
/// [`ReductionError::DeadlineExceeded`] when `deadline` passes.
#[allow(clippy::result_large_err)]
pub fn reduce_cf_resilient_with_workspace<S: Sink>(
    h: &Hypergraph,
    chain: &[&dyn MaxIsOracle],
    config: ResilientConfig,
    tel: &Telemetry<S>,
    ws: &mut PhaseWorkspace,
    deadline: Option<Instant>,
) -> Result<ResilientOutcome, ResilientFailure> {
    reduce_resilient_inner(h, chain, config, tel, None, ws, deadline).map(|(outcome, _)| outcome)
}

/// [`reduce_cf_resilient_traced`] with crash-safe checkpointing: every
/// committed phase — including its fault events, per-slot oracle-call
/// positions, and the quota actually enforced on the accepted set — is
/// durably appended to the [`PhaseJournal`] in `checkpoint.dir`; with
/// [`Checkpointing::resume`] an existing journal is replayed
/// (corruption-tolerant, each record re-validated — see
/// [`crate::recovery`]) and the run continues from the last good
/// phase, with every oracle in the chain fast-forwarded through
/// [`MaxIsOracle::resume_at`] so fault schedules stay aligned and the
/// outcome is **byte-identical** to an uninterrupted run.
///
/// Injected *process* crashes (panics whose payload is a
/// [`CrashSignal`]) are re-raised, never swallowed as retryable oracle
/// faults — a process death must actually kill the run for the
/// journal's durability to mean anything.
///
/// # Errors
///
/// See [`reduce_cf_resilient`]; journal I/O failures surface as
/// [`ReductionError::CheckpointFailed`] with salvage.
#[allow(clippy::result_large_err)]
pub fn reduce_cf_resilient_resumable<S: Sink>(
    h: &Hypergraph,
    chain: &[&dyn MaxIsOracle],
    config: ResilientConfig,
    checkpoint: &Checkpointing,
    tel: &Telemetry<S>,
) -> Result<(ResilientOutcome, RecoveryReport), ResilientFailure> {
    reduce_resilient_inner(
        h,
        chain,
        config,
        tel,
        Some(checkpoint),
        &mut PhaseWorkspace::new(),
        None,
    )
}

#[allow(clippy::result_large_err)]
#[allow(clippy::too_many_arguments)]
fn reduce_resilient_inner<S: Sink>(
    h: &Hypergraph,
    chain: &[&dyn MaxIsOracle],
    config: ResilientConfig,
    tel: &Telemetry<S>,
    checkpoint: Option<&Checkpointing>,
    ws: &mut PhaseWorkspace,
    deadline: Option<Instant>,
) -> Result<(ResilientOutcome, RecoveryReport), ResilientFailure> {
    let root = span!(tel, names::REDUCTION);
    let m = h.edge_count();
    let k = config.base.k;
    let mut coloring = Multicoloring::new(h.node_count());
    let mut residual: Vec<HyperedgeId> = h.edge_ids().collect();
    let mut fault_log: Vec<FaultEvent> = Vec::new();
    let mut records: Vec<PhaseRecord> = Vec::new();

    macro_rules! fail {
        ($error:expr) => {
            return Err(ResilientFailure {
                error: $error,
                partial: PartialOutcome { coloring, residual_edges: residual, records },
                fault_log,
            })
        };
    }
    // Every fault-log entry is mirrored as a `fault_events` tick so a
    // sink can cross-check the log length without seeing the log.
    macro_rules! fault {
        ($event:expr) => {{
            root.add(Counter::FaultEvents, 1);
            fault_log.push($event);
        }};
    }

    if chain.is_empty() {
        fail!(ReductionError::RetriesExhausted { phase: 0, attempts: 0 });
    }

    // λ and budget exactly as the trusting driver computes them, from
    // the primary oracle.
    let first_cg = ConflictGraph::build_traced(
        h,
        k,
        ConflictGraphOptions::with_kernel(config.base.kernel),
        &root,
    );
    let lambda = match config.base.lambda_override {
        Some(l) => l,
        None => match lambda_for_phase(&first_cg, chain[0]) {
            Some(l) => l,
            None => fail!(ReductionError::NoLambdaAvailable),
        },
    };
    let rho = ReductionConfig::rho(lambda, m);
    let budget = config.base.max_phases.unwrap_or(rho).min(rho);

    // Decay invariant applies to primary-accepted phases of a certified
    // primary (mirrors the trusting driver); replay re-checks under the
    // same gate.
    let primary_certified =
        matches!(chain[0].guarantee(), ApproxGuarantee::Exact | ApproxGuarantee::MaxDegreePlusOne);
    let enforce_decay = primary_certified && config.base.lambda_override.is_none() && lambda >= 1.0;

    let mut retries = 0usize;
    let mut fallbacks_engaged = 0usize;
    let mut phase = 0usize;
    // Cumulative `independent_set` invocations per chain slot: the
    // resume positions `MaxIsOracle::resume_at` restores on resume.
    let mut chain_calls: Vec<u64> = vec![0; chain.len()];
    let mut report = RecoveryReport::default();
    let mut journal: Option<PhaseJournal> = None;
    let crash = checkpoint.and_then(|c| c.crash.as_ref());
    // Phase-incremental pipeline, identical to `reduce_cf_to_maxis`:
    // later phases filter the previous conflict graph's retained CSR
    // rows (`ConflictGraph::restrict_to_edges`) instead of re-running
    // the construction kernel, which also keeps the two drivers'
    // per-phase graphs — and hence their records — byte-identical.
    let mut cg = first_cg;

    if let Some(ckpt) = checkpoint {
        let ctx = recovery::ReplayCtx {
            h,
            driver: DriverKind::Resilient,
            k,
            lambda,
            rho,
            budget,
            threads: config.base.parallelism.threads,
            enforce_decay,
            chain_names: chain.iter().map(|o| o.name()).collect(),
        };
        let replayed = match recovery::open_or_replay(
            &ctx,
            ckpt,
            &mut cg,
            &mut coloring,
            &mut residual,
            &root,
        ) {
            Ok(replayed) => replayed,
            Err(e) => fail!(ReductionError::CheckpointFailed { message: e.to_string() }),
        };
        phase = replayed.phase;
        records = replayed.records;
        chain_calls = replayed.chain_calls;
        retries = replayed.retries as usize;
        fallbacks_engaged = replayed.fallbacks as usize;
        // Replayed events re-enter the log (and the mirror counter, so
        // `fault_events == fault_log.len()` still holds on resume).
        root.add(Counter::FaultEvents, replayed.fault_log.len() as u64);
        fault_log = replayed.fault_log;
        report = replayed.report;
        journal = Some(replayed.journal);
        for (slot, oracle) in chain.iter().enumerate() {
            oracle.resume_at(chain_calls[slot] as usize);
        }
    }

    while !residual.is_empty() && phase < budget {
        // Cooperative cancellation: overdue runs stop at the phase
        // boundary with salvage (whole committed phases only).
        if deadline.is_some_and(|d| Instant::now() >= d) {
            fail!(ReductionError::DeadlineExceeded { phase });
        }
        let phase_span = span!(root, names::PHASE, phase);
        let edges_before = residual.len();
        let phase_log_start = fault_log.len();
        let cg_fingerprint = journal.as_ref().map(|_| cg.fingerprint());
        recovery::maybe_crash(crash, phase, CrashPoint::MidOracle);

        // Acquire an acceptable independent set. With `threads > 1`
        // and a disconnected conflict graph, each component runs its
        // own chain walk concurrently (a fault retries only its
        // component, never its siblings) and the verified local sets
        // merge; otherwise the historical serial chain walk runs on
        // the whole graph. Either way the phase commits atomically.
        // `quota_required` is the Lemma 2.1 quota actually enforced on
        // the accepted set (0 = none: heuristic oracle, or the
        // parallel path whose per-component quotas do not reduce to
        // one whole-graph number) — journaled so replay re-demands
        // exactly what the original run demanded.
        let (set, accepted_primary, quota_required) = 'acquire: {
            if config.base.parallelism.is_parallel() {
                let exec = ComponentExecutor::new(cg.graph(), config.base.parallelism);
                if exec.should_decompose() {
                    let parts = exec.partition().len();
                    phase_span.add(Counter::Components, parts as u64);
                    phase_span
                        .add(Counter::LargestComponent, exec.partition().largest_size() as u64);
                    // Every hyperedge's triple block is an E_edge
                    // clique, so blocks never split across components
                    // and the residual hyperedges *partition* over
                    // them: the Lemma 2.1 quota each component must
                    // meet is ⌈m_c/λ_c⌉ on its own hyperedge count.
                    let mut comp_edges = vec![0usize; parts];
                    for e in cg.hypergraph().edge_ids() {
                        comp_edges[exec.partition().component_of(cg.block_start(e))] += 1;
                    }
                    struct ComponentAttempt {
                        set: Option<(IndependentSet, usize)>,
                        attempts: usize,
                        fallbacks: usize,
                        events: Vec<FaultEvent>,
                        /// `independent_set` invocations per chain slot
                        /// within this component (resume accounting).
                        per_slot: Vec<u64>,
                    }
                    let results = exec.run(|c, sub| {
                        let comp_span = span!(phase_span, names::COMPONENT, c);
                        let mut events = Vec::new();
                        let mut accepted = None;
                        let mut attempt = 0usize;
                        let mut fallbacks = 0usize;
                        let mut per_slot = vec![0u64; chain.len()];
                        'chain: for (idx, oracle) in chain.iter().enumerate() {
                            if idx > 0 {
                                fallbacks += 1;
                                events.push(FaultEvent {
                                    phase,
                                    attempt,
                                    oracle: oracle.name(),
                                    component: Some(c),
                                    kind: FaultEventKind::FallbackEngaged,
                                });
                            }
                            for retry in 0..=config.max_retries {
                                let this_attempt = attempt;
                                attempt += 1;
                                let tolerance = stall_budget(config.stall_tolerance, retry);
                                let oracle_span = span!(comp_span, names::ORACLE, this_attempt);
                                comp_span.add(Counter::ParallelOracleCalls, 1);
                                per_slot[idx] += 1;
                                let answer =
                                    catch_unwind(AssertUnwindSafe(|| oracle.independent_set(sub)));
                                let set = match answer {
                                    Err(payload) => {
                                        // An injected *process* crash is
                                        // not an oracle fault: re-raise
                                        // so it kills the run.
                                        if payload.downcast_ref::<CrashSignal>().is_some() {
                                            resume_unwind(payload);
                                        }
                                        drop(oracle_span);
                                        events.push(FaultEvent {
                                            phase,
                                            attempt: this_attempt,
                                            oracle: oracle.name(),
                                            component: Some(c),
                                            kind: FaultEventKind::OraclePanicked,
                                        });
                                        continue;
                                    }
                                    Ok(set) => set,
                                };
                                // A single *stateful* oracle is shared
                                // by all workers, so stall readings may
                                // interleave across components; the
                                // budget still bounds every reading it
                                // acts on.
                                let stalled = oracle.stalled_steps();
                                oracle_span.add(Counter::StalledSteps, stalled as u64);
                                oracle_span.sample(Histogram::IndependentSetSize, set.len() as u64);
                                drop(oracle_span);
                                if stalled > tolerance {
                                    events.push(FaultEvent {
                                        phase,
                                        attempt: this_attempt,
                                        oracle: oracle.name(),
                                        component: Some(c),
                                        kind: FaultEventKind::OracleStalled {
                                            steps: stalled,
                                            tolerance,
                                        },
                                    });
                                    continue;
                                }
                                if !validates_independence(sub, &set) {
                                    events.push(FaultEvent {
                                        phase,
                                        attempt: this_attempt,
                                        oracle: oracle.name(),
                                        component: Some(c),
                                        kind: FaultEventKind::OracleInvalidOutput,
                                    });
                                    continue;
                                }
                                let certified = matches!(
                                    oracle.guarantee(),
                                    ApproxGuarantee::Exact | ApproxGuarantee::MaxDegreePlusOne
                                );
                                if certified {
                                    if let Some(l) = oracle.lambda_for(sub) {
                                        if l >= 1.0 {
                                            let required = lemma_2_1_quota(comp_edges[c], l);
                                            if set.len() < required {
                                                events.push(FaultEvent {
                                                    phase,
                                                    attempt: this_attempt,
                                                    oracle: oracle.name(),
                                                    component: Some(c),
                                                    kind: FaultEventKind::OracleUnderDelivered {
                                                        delivered: set.len(),
                                                        required,
                                                    },
                                                });
                                                continue;
                                            }
                                        }
                                    }
                                }
                                accepted = Some((set, idx));
                                break 'chain;
                            }
                        }
                        ComponentAttempt {
                            set: accepted,
                            attempts: attempt,
                            fallbacks,
                            events,
                            per_slot,
                        }
                    });
                    // Aggregate in component-id order: the fault log,
                    // counters, and merge result are deterministic
                    // regardless of how workers interleaved.
                    let mut total_attempts = 0usize;
                    let mut accepted_count = 0usize;
                    let mut all_primary = true;
                    let mut first_failed: Option<usize> = None;
                    let mut locals = Vec::with_capacity(parts);
                    for (c, r) in results.into_iter().enumerate() {
                        total_attempts += r.attempts;
                        fallbacks_engaged += r.fallbacks;
                        phase_span.add(Counter::Fallbacks, r.fallbacks as u64);
                        for (slot, calls) in r.per_slot.iter().enumerate() {
                            chain_calls[slot] += calls;
                        }
                        for ev in r.events {
                            fault!(ev);
                        }
                        match r.set {
                            Some((set, idx)) => {
                                accepted_count += 1;
                                if idx != 0 {
                                    all_primary = false;
                                }
                                locals.push(set);
                            }
                            None => {
                                first_failed.get_or_insert(c);
                                locals.push(IndependentSet::empty());
                            }
                        }
                    }
                    phase_span.add(Counter::OracleCalls, total_attempts as u64);
                    let phase_retries = total_attempts - accepted_count;
                    retries += phase_retries;
                    phase_span.add(Counter::Retries, phase_retries as u64);
                    if let Some(c) = first_failed {
                        // No partial commit: one exhausted component
                        // fails the whole phase, keeping salvage a
                        // whole-phase boundary exactly as on the
                        // serial path.
                        fault!(FaultEvent {
                            phase,
                            attempt: total_attempts.saturating_sub(1),
                            oracle: chain.last().map_or("", |o| o.name()),
                            component: Some(c),
                            kind: FaultEventKind::RetriesExhausted { attempts: total_attempts },
                        });
                        fail!(ReductionError::RetriesExhausted { phase, attempts: total_attempts });
                    }
                    // Per-component quotas (⌈m_c/λ_c⌉, possibly met by
                    // fallback slots) do not reduce to one whole-graph
                    // number, so the journal records no quota here.
                    break 'acquire (exec.merge(locals), all_primary, 0);
                }
            }
            // Serial path: walk the chain, retry each oracle up to
            // max_retries times with a doubling stall budget per
            // attempt.
            let mut accepted: Option<(IndependentSet, usize, usize)> = None;
            let mut attempt = 0usize;
            'chain: for (idx, oracle) in chain.iter().enumerate() {
                if idx > 0 {
                    fallbacks_engaged += 1;
                    phase_span.add(Counter::Fallbacks, 1);
                    fault!(FaultEvent {
                        phase,
                        attempt,
                        oracle: oracle.name(),
                        component: None,
                        kind: FaultEventKind::FallbackEngaged,
                    });
                }
                for retry in 0..=config.max_retries {
                    let this_attempt = attempt;
                    attempt += 1;
                    let tolerance = stall_budget(config.stall_tolerance, retry);
                    let oracle_span = span!(phase_span, names::ORACLE, this_attempt);
                    phase_span.add(Counter::OracleCalls, 1);
                    chain_calls[idx] += 1;
                    // Dense dispatch mirrors the trusting driver; the
                    // workspace scratch is state-free across calls, so
                    // a caught panic mid-kernel cannot poison retries.
                    let answer = catch_unwind(AssertUnwindSafe(|| match cg.bitset() {
                        Some(bits) if oracle.supports_dense() => {
                            oracle.independent_set_dense(bits, &mut ws.scratch)
                        }
                        _ => oracle.independent_set(cg.graph()),
                    }));
                    let set = match answer {
                        Err(payload) => {
                            // An injected *process* crash is not an
                            // oracle fault: re-raise so it kills the
                            // run instead of burning a retry.
                            if payload.downcast_ref::<CrashSignal>().is_some() {
                                resume_unwind(payload);
                            }
                            drop(oracle_span);
                            fault!(FaultEvent {
                                phase,
                                attempt: this_attempt,
                                oracle: oracle.name(),
                                component: None,
                                kind: FaultEventKind::OraclePanicked,
                            });
                            continue;
                        }
                        Ok(set) => set,
                    };
                    let stalled = oracle.stalled_steps();
                    oracle_span.add(Counter::StalledSteps, stalled as u64);
                    oracle_span.sample(Histogram::IndependentSetSize, set.len() as u64);
                    drop(oracle_span);
                    if stalled > tolerance {
                        fault!(FaultEvent {
                            phase,
                            attempt: this_attempt,
                            oracle: oracle.name(),
                            component: None,
                            kind: FaultEventKind::OracleStalled { steps: stalled, tolerance },
                        });
                        continue;
                    }
                    if !cg.verify_independent(&set) {
                        fault!(FaultEvent {
                            phase,
                            attempt: this_attempt,
                            oracle: oracle.name(),
                            component: None,
                            kind: FaultEventKind::OracleInvalidOutput,
                        });
                        continue;
                    }
                    // Delivery quota per Lemma 2.1, against the calling
                    // oracle's own certified λ on this phase's conflict
                    // graph; heuristic and asymptotic guarantees promise
                    // no per-instance quota, so only certified ones
                    // gate.
                    let certified = matches!(
                        oracle.guarantee(),
                        ApproxGuarantee::Exact | ApproxGuarantee::MaxDegreePlusOne
                    );
                    let mut required = 0usize;
                    if certified {
                        if let Some(l) = lambda_for_phase(&cg, *oracle) {
                            if l >= 1.0 {
                                required = lemma_2_1_quota(edges_before, l);
                                if set.len() < required {
                                    fault!(FaultEvent {
                                        phase,
                                        attempt: this_attempt,
                                        oracle: oracle.name(),
                                        component: None,
                                        kind: FaultEventKind::OracleUnderDelivered {
                                            delivered: set.len(),
                                            required,
                                        },
                                    });
                                    continue;
                                }
                            }
                        }
                    }
                    accepted = Some((set, idx, required));
                    break 'chain;
                }
            }
            retries += attempt.saturating_sub(1);
            phase_span.add(Counter::Retries, attempt.saturating_sub(1) as u64);

            let Some((set, accepted_idx, quota_required)) = accepted else {
                fault!(FaultEvent {
                    phase,
                    attempt: attempt.saturating_sub(1),
                    oracle: chain.last().map_or("", |o| o.name()),
                    component: None,
                    kind: FaultEventKind::RetriesExhausted { attempts: attempt },
                });
                fail!(ReductionError::RetriesExhausted { phase, attempts: attempt });
            };
            break 'acquire (set, accepted_idx == 0, quota_required);
        };

        recovery::maybe_crash(crash, phase, CrashPoint::AfterOracle);

        // Commit the phase exactly as the trusting driver does — the
        // shared `commit_phase` kernel is what keeps the two drivers
        // (and journal replay) byte-identical.
        let commit_span = span!(phase_span, names::COMMIT);
        let commit = commit_phase(h, &cg, &set, k, phase, &mut coloring, &mut residual);
        let edges_after = commit.edges_after;
        commit_span.add(Counter::HappyEdges, (edges_before - edges_after) as u64);
        commit_span.close();
        phase_span.add(Counter::EdgesRemoved, (edges_before - edges_after) as u64);
        root.add(Counter::Phases, 1);

        records.push(PhaseRecord {
            phase,
            edges_before,
            conflict_nodes: cg.node_count(),
            conflict_edges: cg.edge_count(),
            independent_set_size: set.len(),
            edges_removed: edges_before - edges_after,
            edges_after,
        });

        // Decay invariant, mirroring the trusting driver: enforced only
        // for primary-accepted phases of a certified primary (fallback
        // commits are already annotated in the fault log).
        if accepted_primary && enforce_decay && edges_after > decay_allowed(edges_before, lambda) {
            fail!(ReductionError::DecayViolated {
                phase,
                before: edges_before,
                after: edges_after,
                lambda,
            });
        }

        if let Some(j) = journal.as_mut() {
            recovery::maybe_crash(crash, phase, CrashPoint::BeforeJournal);
            let write_span = span!(phase_span, names::CHECKPOINT_WRITE);
            let entry = JournalPhase {
                phase,
                // pslocal: allow(panic-path, "the fingerprint is computed earlier in this same journaling branch; None here is a control-flow bug")
                cg_fingerprint: cg_fingerprint.expect("computed while journaling"),
                set: set.vertices().iter().map(|v| v.index() as u64).collect(),
                // pslocal: allow(panic-path, "records.push happened unconditionally a few lines up, so last() always exists")
                record: records.last().expect("just pushed").clone(),
                quota_required,
                primary: accepted_primary,
                chain_calls: chain_calls.clone(),
                retries: retries as u64,
                fallbacks: fallbacks_engaged as u64,
                events: fault_log[phase_log_start..]
                    .iter()
                    .map(StoredFaultEvent::from_event)
                    .collect(),
            };
            let bytes = match j.append_phase(entry) {
                Ok(bytes) => bytes,
                Err(e) => fail!(ReductionError::CheckpointFailed { message: e.to_string() }),
            };
            write_span.add(Counter::JournalBytes, bytes);
            write_span.close();
            report.journal_bytes = bytes;
            recovery::maybe_crash(crash, phase, CrashPoint::AfterJournal);
        }

        phase += 1;
        if !residual.is_empty() && phase < budget {
            let restrict_span = span!(phase_span, names::RESTRICT);
            let restricted =
                cg.restrict_to_edges_in(&commit.keep_pos, &mut ws.arena, &mut ws.nodes);
            if let Some(old) = std::mem::replace(&mut cg, restricted).into_graph() {
                ws.arena.recycle(old);
            }
            restrict_span.add(Counter::CsrBytes, cg.csr_bytes());
        }
    }

    if !residual.is_empty() {
        fail!(ReductionError::PhaseBudgetExhausted {
            rho: budget,
            remaining_edges: residual.len()
        });
    }

    debug_assert!(checker::is_conflict_free(h, &coloring));
    let total_colors = coloring.total_color_count();
    Ok((
        ResilientOutcome {
            reduction: ReductionOutcome {
                coloring,
                lambda,
                rho,
                phases_used: phase,
                total_colors,
                records,
                locality: LocalityBudget {
                    own_locality: 1,
                    oracle_calls: phase,
                    oracle_locality: oracle_locality(h.node_count()),
                },
            },
            fault_log,
            retries,
            fallbacks_engaged,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::CrashPlan;
    use crate::reduction::reduce_cf_to_maxis;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_maxis::{
        ExactOracle, FaultKind, FaultPlan, FaultyOracle, GreedyOracle, PrecisionOracle,
        WorstWitnessOracle,
    };
    use rand::SeedableRng;

    fn planted(seed: u64, n: usize, m: usize, k: usize) -> Hypergraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph
    }

    #[test]
    fn clean_run_matches_trusting_driver_exactly() {
        let k = 3;
        let h = planted(1, 36, 15, k);
        let base = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        let res = reduce_cf_resilient(&h, &[&GreedyOracle], ResilientConfig::new(k)).unwrap();
        assert_eq!(res.reduction.records, base.records, "byte-identical phase records");
        assert_eq!(res.reduction.coloring, base.coloring);
        assert_eq!(res.reduction.lambda, base.lambda);
        assert_eq!(res.reduction.rho, base.rho);
        assert_eq!(res.reduction.total_colors, base.total_colors);
        // Both drivers charge the oracle the same ⌈log₂ n⌉ view radius
        // — the shared `oracle_locality` helper cannot drift.
        assert_eq!(res.reduction.locality, base.locality);
        assert!(res.fault_log.is_empty());
        assert_eq!(res.retries, 0);
        assert_eq!(res.fallbacks_engaged, 0);
    }

    #[test]
    fn every_single_fault_kind_is_survived_by_retry() {
        let k = 2;
        let h = planted(2, 28, 10, k);
        for kind in [
            FaultKind::InvalidSet,
            FaultKind::EmptySet,
            FaultKind::Panic,
            FaultKind::Stall(1_000_000),
        ] {
            let plan = FaultPlan::scripted(vec![Some(kind)]);
            let faulty = FaultyOracle::new(GreedyOracle, plan);
            let out = reduce_cf_resilient(&h, &[&faulty], ResilientConfig::new(k))
                .unwrap_or_else(|e| panic!("fault {kind:?} not survived: {e}"));
            assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
            assert!(out.retries >= 1, "fault {kind:?} must cost a retry");
            assert!(!out.fault_log.is_empty());
        }
    }

    #[test]
    fn under_delivery_below_certified_quota_is_caught() {
        let k = 2;
        let h = planted(8, 28, 10, k);
        // Exact's certified quota on a CF-k-colorable instance is the
        // full |E_i| (α(G_k) = m); halving it must trip the Lemma 2.1
        // delivery check, and the clean retry completes the run.
        let plan = FaultPlan::scripted(vec![Some(FaultKind::UnderDeliver)]);
        let faulty = FaultyOracle::new(ExactOracle, plan);
        let out = reduce_cf_resilient(&h, &[&faulty], ResilientConfig::new(k)).unwrap();
        assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
        assert_eq!(out.retries, 1);
        assert!(out
            .fault_log
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::OracleUnderDelivered { .. })));
    }

    #[test]
    fn fallback_rescues_an_always_failing_primary() {
        let k = 2;
        let h = planted(3, 24, 8, k);
        // Primary panics on every call; Greedy fallback must carry the run.
        let broken =
            FaultyOracle::new(ExactOracle, FaultPlan::scripted(vec![Some(FaultKind::Panic); 64]));
        let cfg = ResilientConfig::new(k);
        let out = reduce_cf_resilient(&h, &[&broken, &GreedyOracle], cfg).unwrap();
        assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
        assert!(out.fallbacks_engaged >= 1);
        assert!(out.fault_log.iter().any(|e| e.kind == FaultEventKind::FallbackEngaged));
        assert!(out.fault_log.iter().any(|e| e.kind == FaultEventKind::OraclePanicked));
    }

    #[test]
    fn exhausted_chain_salvages_partial_progress() {
        let k = 2;
        // 8 disjoint edges: a 1-triple-per-phase oracle removes exactly
        // one edge per phase, so the run cannot finish in phase 0.
        let h =
            Hypergraph::from_edges(16, (0..8).map(|i| vec![2 * i, 2 * i + 1]).collect::<Vec<_>>())
                .unwrap();
        // First call succeeds (phase 0 commits), everything after panics.
        let mut script = vec![None];
        script.extend(std::iter::repeat_n(Some(FaultKind::Panic), 64));
        let faulty = FaultyOracle::new(PrecisionOracle::new(1000.0), FaultPlan::scripted(script));
        let mut cfg = ResilientConfig::new(k);
        cfg.base.lambda_override = Some(3.0);
        let err = reduce_cf_resilient(&h, &[&faulty], cfg).unwrap_err();
        let ReductionError::RetriesExhausted { phase, attempts } = err.error else {
            panic!("expected RetriesExhausted, got {}", err.error);
        };
        assert_eq!(phase, 1, "phase 0 committed before the failures began");
        assert_eq!(attempts, cfg.max_retries + 1);
        assert_eq!(err.partial.records.len(), 1);
        assert!(!err.partial.residual_edges.is_empty());
        // Salvage is verified progress: edges outside the residual are
        // happy under the partial coloring.
        for e in h.edge_ids() {
            if !err.partial.residual_edges.contains(&e) {
                assert!(checker::is_edge_happy(&h, &err.partial.coloring, e));
            }
        }
        assert!(err.to_string().contains("salvageable"));
        assert!(err.source().is_some());
    }

    #[test]
    fn heuristic_primary_without_override_is_refused() {
        let h = planted(5, 20, 6, 2);
        let err =
            reduce_cf_resilient(&h, &[&WorstWitnessOracle], ResilientConfig::new(2)).unwrap_err();
        assert_eq!(err.error, ReductionError::NoLambdaAvailable);
        assert!(err.partial.records.is_empty());
        assert_eq!(err.partial.residual_edges.len(), h.edge_count());
    }

    #[test]
    fn empty_chain_fails_gracefully() {
        let h = planted(6, 20, 6, 2);
        let err = reduce_cf_resilient(&h, &[], ResilientConfig::new(2)).unwrap_err();
        assert!(matches!(err.error, ReductionError::RetriesExhausted { phase: 0, attempts: 0 }));
    }

    #[test]
    fn stall_backoff_admits_slow_oracle_on_retry() {
        let k = 2;
        let h = planted(7, 24, 8, k);
        // Stalls of 20 exceed tolerance 8 but fit 16 on the first
        // retry (8 << 1); a permanently-slow oracle still completes.
        let script = vec![Some(FaultKind::Stall(12)); 64];
        let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::scripted(script));
        let cfg = ResilientConfig { stall_tolerance: 8, ..ResilientConfig::new(k) };
        let out = reduce_cf_resilient(&h, &[&faulty], cfg).unwrap();
        assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
        assert!(out
            .fault_log
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::OracleStalled { .. })));
    }

    #[test]
    fn stall_budget_saturates_instead_of_wrapping() {
        // The regression: `base << retry` wraps once the set bits shift
        // out — for base = 2^62 the old code handed retry 2 a budget of
        // 0 and rejected every call as stalled. Saturation must keep
        // the budget monotone non-decreasing across retries.
        for base in [1usize, 8, usize::MAX / 3, 1 << 62, usize::MAX] {
            let mut prev = 0usize;
            for retry in 0..=300 {
                let budget = stall_budget(base, retry);
                assert!(
                    budget >= prev,
                    "budget wrapped: base={base} retry={retry}: {budget} < {prev}"
                );
                assert!(budget >= base, "backoff may never shrink below the base");
                prev = budget;
            }
            assert_eq!(stall_budget(base, 300), usize::MAX, "large retries saturate");
        }
        // Exact doubling while it fits…
        assert_eq!(stall_budget(8, 0), 8);
        assert_eq!(stall_budget(8, 3), 64);
        assert_eq!(stall_budget(1, 63), 1 << 63);
        // …saturation exactly at the first lossy shift…
        assert_eq!(stall_budget(1, 64), usize::MAX);
        assert_eq!(stall_budget(1 << 62, 2), usize::MAX);
        // …and zero tolerance stays zero (0 · 2^retry = 0).
        assert_eq!(stall_budget(0, 100), 0);
    }

    #[test]
    fn huge_stall_tolerance_never_false_rejects() {
        // Driver-level regression: with stall_tolerance = 2^62 and many
        // retries, the pre-fix budget wrapped to 0 from retry 2 on, so
        // a clean oracle whose simulated stall fits the *base* budget
        // was falsely rejected forever. Post-fix the saturated budget
        // admits it on every attempt.
        let k = 2;
        let h = planted(9, 24, 8, k);
        let script = vec![Some(FaultKind::Stall(usize::MAX)); 64];
        let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::scripted(script));
        let cfg =
            ResilientConfig { stall_tolerance: 1 << 62, max_retries: 8, ..ResilientConfig::new(k) };
        // A stall of usize::MAX steps exceeds tolerance 2^62 on attempt
        // 0, but retry 1's budget is 2^63 — still short — and retry 2
        // saturates at usize::MAX, admitting the call. Pre-fix, retry 2
        // wrapped to 0 and the run died with RetriesExhausted.
        let out = reduce_cf_resilient(&h, &[&faulty], cfg).unwrap();
        assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
        assert!(out
            .fault_log
            .iter()
            .all(|e| !matches!(e.kind, FaultEventKind::RetriesExhausted { .. })));
    }

    #[test]
    fn traced_resilient_run_attributes_attempts_and_faults() {
        use pslocal_telemetry::{Counter, MemorySink, Telemetry};
        let k = 2;
        let h = planted(10, 28, 10, k);
        let plan = FaultPlan::scripted(vec![Some(FaultKind::Panic), Some(FaultKind::Stall(50))]);
        let faulty = FaultyOracle::new(GreedyOracle, plan);
        let tel = Telemetry::new(MemorySink::new());
        let out =
            reduce_cf_resilient_traced(&h, &[&faulty], ResilientConfig::new(k), &tel).unwrap();
        let sink = tel.into_sink();
        assert!(sink.open_spans().is_empty(), "caught panic must not orphan the oracle span");
        assert_eq!(sink.counter_total(Counter::FaultEvents), out.fault_log.len() as u64);
        assert_eq!(sink.counter_total(Counter::Retries), out.retries as u64);
        let spans = sink.spans();
        let oracle_spans =
            spans.iter().filter(|s| s.name == pslocal_telemetry::names::ORACLE).count();
        // Every committed phase spends one accepted attempt, plus one
        // span per rejected attempt (= retries).
        let attempts = out.reduction.phases_used + out.retries;
        assert_eq!(oracle_spans, attempts, "one oracle span per attempt");
    }

    #[test]
    fn fault_event_display_is_informative() {
        let e = FaultEvent {
            phase: 2,
            attempt: 1,
            oracle: "greedy",
            component: None,
            kind: FaultEventKind::OracleUnderDelivered { delivered: 1, required: 4 },
        };
        let s = e.to_string();
        assert!(s.contains("phase 2"));
        assert!(s.contains("greedy"));
        assert!(s.contains("under-delivered"));
        assert!(!s.contains("component"), "serial events stay component-free");
        let p = FaultEvent { component: Some(3), ..e };
        assert!(p.to_string().contains("component 3"));
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pslocal-resilient-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn resumable_clean_run_matches_the_plain_resilient_run() {
        let k = 3;
        let h = planted(31, 36, 15, k);
        let base = reduce_cf_resilient(&h, &[&GreedyOracle], ResilientConfig::new(k)).unwrap();
        let dir = ckpt_dir("clean");
        let tel = Telemetry::disabled();
        let (out, report) = reduce_cf_resilient_resumable(
            &h,
            &[&GreedyOracle],
            ResilientConfig::new(k),
            &Checkpointing::new(&dir),
            &tel,
        )
        .unwrap();
        assert_eq!(out.reduction.records, base.reduction.records);
        assert_eq!(out.reduction.coloring, base.reduction.coloring);
        assert!(!report.resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_crash_replays_faults_and_stays_byte_identical() {
        // A flaky primary (panics on its 2nd call) forces retries, so
        // the journal must carry both the fault events and the oracle's
        // cumulative call count for the resumed run to realign the
        // schedule. Fresh FaultyOracle instances before each run keep
        // the schedule itself deterministic.
        let k = 3;
        let h = planted(32, 40, 18, k);
        // λ = 4 keeps the run multi-phase (Greedy would finish planted
        // instances in one).
        let plan = || {
            FaultPlan::scripted(vec![None, Some(FaultKind::Panic), None, None, None, None, None])
        };
        let cfg = || ResilientConfig { max_retries: 2, ..ResilientConfig::new(k) };
        let baseline = {
            let flaky = FaultyOracle::new(PrecisionOracle::new(4.0), plan());
            reduce_cf_resilient(&h, &[&flaky], cfg()).unwrap()
        };
        assert!(baseline.reduction.phases_used >= 2, "need phases to interrupt");
        assert_eq!(baseline.retries, 1, "the scripted panic must actually fire");
        let dir = ckpt_dir("crash");
        let tel = Telemetry::disabled();
        {
            let flaky = FaultyOracle::new(PrecisionOracle::new(4.0), plan());
            let ckpt = Checkpointing::new(&dir)
                .with_crash(CrashPlan::panicking(1, CrashPoint::BeforeJournal));
            let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drop(reduce_cf_resilient_resumable(&h, &[&flaky], cfg(), &ckpt, &tel));
            }))
            .expect_err("kill point fires");
            assert!(
                died.downcast_ref::<CrashSignal>().is_some(),
                "process crashes must escape as CrashSignal, not be retried"
            );
        }
        let flaky = FaultyOracle::new(PrecisionOracle::new(4.0), plan());
        let (out, report) = reduce_cf_resilient_resumable(
            &h,
            &[&flaky],
            cfg(),
            &Checkpointing::new(&dir).resuming(),
            &tel,
        )
        .unwrap();
        assert!(report.resumed);
        assert_eq!(report.phases_recovered, 1);
        assert_eq!(out.reduction.records, baseline.reduction.records);
        assert_eq!(out.reduction.coloring, baseline.reduction.coloring);
        assert_eq!(out.retries, baseline.retries);
        assert_eq!(out.fault_log, baseline.fault_log, "fault log survives the crash");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
