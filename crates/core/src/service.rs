//! Batched multi-instance serving of the Theorem 1.1 reduction.
//!
//! Every earlier layer executes one reduction per process invocation,
//! but the reduction is embarrassingly *request*-parallel: each
//! instance is an independent hypergraph + oracle run. [`Service`] is
//! the missing subsystem — a bounded-queue, fixed-worker-pool
//! execution engine that turns the reproduction into something that
//! can serve a stream of instances:
//!
//! * **Bounded admission with explicit backpressure.**
//!   [`Service::submit`] either enqueues or rejects with a typed
//!   [`QueueFull`] (returning the request to the caller); the queue
//!   never grows past [`ServiceConfig::queue_capacity`].
//! * **Fixed worker pool, long-lived workspaces.** Each worker thread
//!   owns one [`PhaseWorkspace`] for its whole life, so steady-state
//!   requests reuse the CSR arena, keep-list, bitset scratch, and
//!   oracle memo instead of hitting the allocator (the PR 7 arena,
//!   now pooled per worker).
//! * **Per-request deadlines, cooperative cancellation.** A request's
//!   deadline is measured from *submission*; the resilient driver
//!   checks it at every phase boundary
//!   ([`reduce_cf_resilient_with_workspace`]) and an overdue run stops
//!   with [`RequestOutcome::DeadlineExceeded`] after a whole number of
//!   committed phases. A workspace carries no semantic state, so the
//!   worker's next request is unaffected.
//! * **Graceful drain.** [`Service::shutdown`] stops admission,
//!   lets the workers finish everything already queued, joins them,
//!   and hands back the telemetry pipeline for reporting.
//!
//! Requests run through the **resilient** driver (`crate::resilient`),
//! so per-request fault tolerance — validation, retries, fallback
//! chains — composes with batching for free, and a request whose
//! oracle chain recovers from injected faults still produces the same
//! result lines as a clean run (pinned by the batch equivalence
//! suite). Telemetry flows through the service's shared
//! [`Telemetry`] pipeline: queue-depth and queue-wait samples on
//! admission/dequeue, one `service-request` span per request (indexed
//! by admission sequence number), and per-request latency histograms,
//! all through the existing [`Sink`] machinery.

use crate::protocol::{OUTCOME_DEADLINE_EXCEEDED, OUTCOME_FAILED, OUTCOME_OK};
use crate::reduction::ReductionError;
use crate::resilient::{reduce_cf_resilient_with_workspace, ResilientConfig};
use crate::sync::lock_unpoisoned;
use crate::workspace::PhaseWorkspace;
use pslocal_graph::Hypergraph;
use pslocal_maxis::{CrashSignal, MaxIsOracle};
use pslocal_telemetry::{names, span, Counter, Histogram, Sink, Telemetry};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on the admission queue when none is configured.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// An oracle a request can carry across the service's thread boundary.
pub type BoxedOracle = Box<dyn MaxIsOracle + Send + Sync>;

/// Pool shape of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads (clamped to ≥ 1). Each owns one long-lived
    /// [`PhaseWorkspace`].
    pub workers: usize,
    /// Admission-queue bound (clamped to ≥ 1): submissions beyond it
    /// are rejected with [`QueueFull`].
    pub queue_capacity: usize,
}

impl ServiceConfig {
    /// `workers` workers over the [`DEFAULT_QUEUE_CAPACITY`] queue.
    pub fn new(workers: usize) -> Self {
        ServiceConfig { workers, queue_capacity: DEFAULT_QUEUE_CAPACITY }
    }

    /// Replaces the admission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// One reduction instance submitted to the service: the hypergraph,
/// the oracle fallback chain that should solve it (owned, so each
/// request's oracle state is private to it), the reduction
/// configuration, and an optional deadline measured from submission.
pub struct ServiceRequest {
    /// Caller-chosen identifier echoed on the [`ServiceResponse`].
    pub id: String,
    /// The instance to reduce.
    pub hypergraph: Hypergraph,
    /// Oracle chain (`chain[0]` primary, rest fallbacks) — exactly the
    /// resilient driver's contract.
    pub chain: Vec<BoxedOracle>,
    /// Reduction + resilience configuration.
    pub config: ResilientConfig,
    /// Wall-clock budget measured from submission; `None` = no limit.
    pub deadline: Option<Duration>,
}

impl ServiceRequest {
    /// A request with no deadline.
    pub fn new(
        id: impl Into<String>,
        hypergraph: Hypergraph,
        chain: Vec<BoxedOracle>,
        config: ResilientConfig,
    ) -> Self {
        ServiceRequest { id: id.into(), hypergraph, chain, config, deadline: None }
    }

    /// Sets the wall-clock budget, measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl fmt::Debug for ServiceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRequest")
            .field("id", &self.id)
            .field("edges", &self.hypergraph.edge_count())
            .field("chain", &self.chain.iter().map(|o| o.name()).collect::<Vec<_>>())
            .field("k", &self.config.base.k)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// Typed backpressure: the admission queue was at capacity (or the
/// service was draining), so the request was **not** enqueued — it is
/// handed back to the caller untouched for retry or rejection
/// reporting.
pub struct QueueFull {
    /// The queue bound that was hit.
    pub capacity: usize,
    /// The rejected request, returned to the caller.
    pub request: ServiceRequest,
}

impl fmt::Debug for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueFull")
            .field("capacity", &self.capacity)
            .field("request", &self.request.id)
            .finish()
    }
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission queue full (capacity {}): request {:?} rejected",
            self.capacity, self.request.id
        )
    }
}

impl Error for QueueFull {}

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The reduction completed; the fields mirror the CLI result line.
    Ok {
        /// Phases the reduction used.
        phases: usize,
        /// Total independent-set size over all phases (`Σ|I_i|`).
        set_size: usize,
        /// Colors of the output multicoloring.
        colors: usize,
    },
    /// The deadline passed at a phase boundary (cooperative
    /// cancellation; the worker and its workspace stay healthy).
    DeadlineExceeded {
        /// The first phase that did not run.
        phase: usize,
    },
    /// The reduction failed (driver error or a panic outside the
    /// oracle boundary).
    Failed {
        /// The stringified error.
        error: String,
    },
}

impl RequestOutcome {
    /// The stable outcome label the JSONL result schema uses.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Ok { .. } => OUTCOME_OK,
            RequestOutcome::DeadlineExceeded { .. } => OUTCOME_DEADLINE_EXCEEDED,
            RequestOutcome::Failed { .. } => OUTCOME_FAILED,
        }
    }
}

/// One completed request, in completion order.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The request's caller-chosen id.
    pub id: String,
    /// How it ended.
    pub outcome: RequestOutcome,
    /// Time spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// End-to-end time, submission to completion.
    pub latency: Duration,
}

/// What [`Service::shutdown`] hands back after the drain.
#[derive(Debug)]
pub struct ServiceReport<S: Sink> {
    /// Responses completed during the drain that the caller had not
    /// yet received.
    pub drained: Vec<ServiceResponse>,
    /// The telemetry pipeline, recovered for reporting.
    pub telemetry: Telemetry<S>,
}

/// Where one request's response is delivered.
enum Reply {
    /// The service-wide completion channel ([`Service::recv`]).
    Pool,
    /// A caller-supplied delivery callback ([`Service::submit_with`])
    /// — the TCP server hands each connection a closure that enqueues
    /// the response onto that connection's writer queue.
    Direct(Box<dyn FnOnce(ServiceResponse) + Send>),
}

/// One queued request plus its admission bookkeeping.
struct Queued {
    request: ServiceRequest,
    submitted: Instant,
    seq: u64,
    reply: Reply,
}

/// Queue state guarded by one mutex: the deque, the admission flag
/// (cleared by shutdown so workers drain and exit), and the admission
/// sequence counter.
struct QueueState {
    queue: VecDeque<Queued>,
    accepting: bool,
    next_seq: u64,
}

struct Shared<S: Sink> {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    tel: Telemetry<S>,
}

/// The batched execution engine — see the [module docs](self).
///
/// # Examples
///
/// ```
/// use pslocal_core::service::{Service, ServiceConfig, ServiceRequest};
/// use pslocal_core::ResilientConfig;
/// use pslocal_graph::Hypergraph;
/// use pslocal_maxis::GreedyOracle;
/// use pslocal_telemetry::{NullSink, Telemetry};
///
/// let service = Service::start(ServiceConfig::new(2), Telemetry::disabled());
/// let h = Hypergraph::from_edges(4, [vec![0, 1], vec![2, 3]]).unwrap();
/// service
///     .submit(ServiceRequest::new(
///         "r0",
///         h,
///         vec![Box::new(GreedyOracle)],
///         ResilientConfig::new(2),
///     ))
///     .unwrap();
/// let response = service.recv().expect("one response");
/// assert_eq!(response.outcome.label(), "ok");
/// let report = service.shutdown();
/// assert!(report.drained.is_empty());
/// ```
pub struct Service<S: Sink + Send + Sync + 'static> {
    shared: Arc<Shared<S>>,
    workers: Vec<JoinHandle<()>>,
    // Mutex-wrapped so `Service` is `Sync` and a front end can share
    // it behind an `Arc` (the TCP server's connection threads submit
    // through one pool). Completion consumption stays single-reader
    // in practice.
    results: Mutex<mpsc::Receiver<ServiceResponse>>,
}

impl<S: Sink + Send + Sync + 'static> Service<S> {
    /// Spawns the worker pool and starts accepting submissions.
    pub fn start(config: ServiceConfig, tel: Telemetry<S>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), accepting: true, next_seq: 0 }),
            available: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            tel,
        });
        let (tx, results) = mpsc::channel();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("pslocal-service-{i}"))
                    .spawn(move || worker_loop(shared, tx))
                    // pslocal: allow(panic-path, "thread spawn fails only on OS resource exhaustion at startup; there is no degraded mode to fall back to")
                    .expect("spawn service worker")
            })
            .collect();
        Service { shared, workers, results: Mutex::new(results) }
    }

    /// Admits `request` into the bounded queue, or rejects it with
    /// [`QueueFull`] when the queue is at capacity or the service is
    /// draining. Never blocks on a full queue — backpressure is the
    /// caller's to handle.
    ///
    /// # Errors
    ///
    /// [`QueueFull`], carrying the request back to the caller.
    // The Err variant carries the whole request back by design — that
    // is the point of typed backpressure (same trade-off as the
    // resilient entry points).
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: ServiceRequest) -> Result<(), QueueFull> {
        self.submit_inner(request, Reply::Pool)
    }

    /// [`submit`](Self::submit), but the response is handed to
    /// `deliver` instead of the service-wide [`recv`](Self::recv)
    /// channel. This is how a multiplexing front end (the TCP server)
    /// routes each completion back to the connection that submitted
    /// it: one delivery target per connection, shared worker pool.
    ///
    /// `deliver` runs on the worker thread that finished the request,
    /// so it must be cheap and non-blocking — enqueue onto a channel,
    /// don't do I/O.
    ///
    /// A delivered response is **never** part of
    /// [`shutdown`](Self::shutdown)'s `drained` list — it went to
    /// `deliver` (which may discard it, the hung-up-client case).
    ///
    /// # Errors
    ///
    /// [`QueueFull`], carrying the request back to the caller.
    #[allow(clippy::result_large_err)]
    pub fn submit_with(
        &self,
        request: ServiceRequest,
        deliver: impl FnOnce(ServiceResponse) + Send + 'static,
    ) -> Result<(), QueueFull> {
        self.submit_inner(request, Reply::Direct(Box::new(deliver)))
    }

    /// [`submit_with`](Self::submit_with) delivering into a plain
    /// channel, for callers that want to block on a receiver.
    ///
    /// # Errors
    ///
    /// [`QueueFull`], carrying the request back to the caller.
    #[allow(clippy::result_large_err)]
    pub fn submit_routed(
        &self,
        request: ServiceRequest,
        reply: mpsc::Sender<ServiceResponse>,
    ) -> Result<(), QueueFull> {
        self.submit_with(request, move |response| {
            let _ = reply.send(response);
        })
    }

    /// The telemetry pipeline the service records through — front ends
    /// layered on top (the TCP server) instrument themselves through
    /// the same pipeline so one sink sees the whole request path.
    pub fn telemetry(&self) -> &Telemetry<S> {
        &self.shared.tel
    }

    #[allow(clippy::result_large_err)]
    fn submit_inner(&self, request: ServiceRequest, reply: Reply) -> Result<(), QueueFull> {
        let depth = {
            let mut st = lock_unpoisoned(&self.shared.state);
            if !st.accepting || st.queue.len() >= self.shared.capacity {
                drop(st);
                self.shared.tel.add(Counter::RequestsRejected, 1);
                return Err(QueueFull { capacity: self.shared.capacity, request });
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push_back(Queued { request, submitted: Instant::now(), seq, reply });
            st.queue.len()
        };
        self.shared.tel.add(Counter::RequestsAdmitted, 1);
        self.shared.tel.sample(Histogram::QueueDepth, depth as u64);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Blocks for the next completed response, in completion order.
    /// Returns `None` only after every worker has exited (post-drain).
    pub fn recv(&self) -> Option<ServiceResponse> {
        lock_unpoisoned(&self.results).recv().ok()
    }

    /// Non-blocking [`recv`](Self::recv).
    pub fn try_recv(&self) -> Option<ServiceResponse> {
        lock_unpoisoned(&self.results).try_recv().ok()
    }

    /// Graceful drain: stops admission (subsequent [`submit`]s are
    /// rejected), lets the workers finish everything already queued,
    /// joins them, and returns the not-yet-received responses plus the
    /// telemetry pipeline.
    ///
    /// [`submit`]: Self::submit
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died of an unexpected panic (the
    /// workers themselves isolate oracle panics, so this indicates a
    /// bug — or a deliberately injected process crash).
    pub fn shutdown(self) -> ServiceReport<S> {
        lock_unpoisoned(&self.shared.state).accepting = false;
        self.shared.available.notify_all();
        for worker in self.workers {
            // pslocal: allow(panic-path, "documented contract: a worker panic is a bug (workers isolate oracle panics) and must surface at shutdown")
            worker.join().expect("service worker panicked");
        }
        let drained = lock_unpoisoned(&self.results).try_iter().collect();
        let shared = Arc::try_unwrap(self.shared)
            // pslocal: allow(panic-path, "all workers joined on the lines above, so no Arc clone can remain; a failure here is unreachable by construction")
            .unwrap_or_else(|_| unreachable!("all workers joined, no clones remain"));
        ServiceReport { drained, telemetry: shared.tel }
    }
}

/// Worker body: own one workspace for life, drain the queue, exit when
/// the queue is empty and the service stopped accepting.
fn worker_loop<S: Sink + Send + Sync>(shared: Arc<Shared<S>>, tx: mpsc::Sender<ServiceResponse>) {
    let mut ws = PhaseWorkspace::new();
    loop {
        let job = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if !st.accepting {
                    break None;
                }
                st = shared.available.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let Queued { request, submitted, seq, reply } = job;
        let response = execute(&shared, request, submitted, seq, &mut ws);
        shared.tel.add(Counter::RequestsCompleted, 1);
        // A dropped receiver (service handle gone, or a routed
        // connection that hung up) is not an error for the drain: keep
        // consuming so shutdown still joins cleanly.
        match reply {
            Reply::Direct(deliver) => deliver(response),
            Reply::Pool => {
                let _ = tx.send(response);
            }
        }
    }
}

/// Runs one request through the resilient driver and maps the result
/// to a response.
fn execute<S: Sink>(
    shared: &Shared<S>,
    request: ServiceRequest,
    submitted: Instant,
    seq: u64,
    ws: &mut PhaseWorkspace,
) -> ServiceResponse {
    let queue_wait = submitted.elapsed();
    shared.tel.sample(Histogram::QueueWaitNs, queue_wait.as_nanos() as u64);
    shared.tel.add(Counter::QueueWaitNs, queue_wait.as_nanos() as u64);
    let deadline = request.deadline.map(|d| submitted + d);
    // A request whose deadline expired while it was still queued is
    // dead on arrival: skip the driver entirely (no conflict-graph
    // build for work nobody can use) and report the same outcome the
    // phase-boundary check would — phase 0 never ran. Without this
    // fast path a zero-edge instance would slip through the driver's
    // phase loop and report `ok` after its deadline.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        shared.tel.add(Counter::DeadlinesExceeded, 1);
        let latency = submitted.elapsed();
        shared.tel.sample(Histogram::RequestLatencyNs, latency.as_nanos() as u64);
        return ServiceResponse {
            id: request.id,
            outcome: RequestOutcome::DeadlineExceeded { phase: 0 },
            queue_wait,
            latency,
        };
    }
    let req_span = span!(shared.tel, names::SERVICE_REQUEST, seq);
    let chain: Vec<&dyn MaxIsOracle> =
        request.chain.iter().map(|o| o.as_ref() as &dyn MaxIsOracle).collect();
    // The resilient driver already isolates oracle panics; this outer
    // catch covers driver bugs so one poisoned request cannot take its
    // worker (and eventually the pool) down with it. Injected process
    // crashes stay fatal, as everywhere else.
    let result = catch_unwind(AssertUnwindSafe(
        #[allow(clippy::result_large_err)]
        || {
            reduce_cf_resilient_with_workspace(
                &request.hypergraph,
                &chain,
                request.config,
                &shared.tel,
                ws,
                deadline,
            )
        },
    ));
    let outcome = match result {
        Ok(Ok(out)) => RequestOutcome::Ok {
            phases: out.reduction.phases_used,
            set_size: out.reduction.records.iter().map(|r| r.independent_set_size).sum(),
            colors: out.reduction.total_colors,
        },
        Ok(Err(failure)) => match failure.error {
            ReductionError::DeadlineExceeded { phase } => {
                shared.tel.add(Counter::DeadlinesExceeded, 1);
                RequestOutcome::DeadlineExceeded { phase }
            }
            error => {
                shared.tel.add(Counter::RequestsFailed, 1);
                RequestOutcome::Failed { error: error.to_string() }
            }
        },
        Err(payload) => {
            if payload.downcast_ref::<CrashSignal>().is_some() {
                resume_unwind(payload);
            }
            shared.tel.add(Counter::RequestsFailed, 1);
            RequestOutcome::Failed { error: "panic outside the oracle boundary".to_string() }
        }
    };
    req_span.close();
    let latency = submitted.elapsed();
    shared.tel.sample(Histogram::RequestLatencyNs, latency.as_nanos() as u64);
    ServiceResponse { id: request.id, outcome, queue_wait, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_graph::{Graph, IndependentSet};
    use pslocal_maxis::{ApproxGuarantee, GreedyOracle};
    use pslocal_telemetry::MemorySink;
    use rand::SeedableRng;

    fn planted(seed: u64) -> pslocal_graph::Hypergraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(48, 20, 3)).hypergraph
    }

    fn request(id: &str, seed: u64) -> ServiceRequest {
        ServiceRequest::new(
            id,
            planted(seed),
            vec![Box::new(GreedyOracle)],
            ResilientConfig::new(3),
        )
    }

    /// A greedy oracle that parks inside `independent_set` until the
    /// test opens its gate — pins one worker mid-request so the queue
    /// can be filled behind it deterministically.
    struct GateOracle {
        entered: Mutex<mpsc::Sender<()>>,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl MaxIsOracle for GateOracle {
        fn name(&self) -> &'static str {
            "gate"
        }

        fn independent_set(&self, graph: &Graph) -> IndependentSet {
            let _ = self.entered.lock().unwrap().send(());
            let (open, cv) = &*self.gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            GreedyOracle.independent_set(graph)
        }

        fn guarantee(&self) -> ApproxGuarantee {
            GreedyOracle.guarantee()
        }
    }

    #[test]
    fn queue_full_is_typed_and_returns_the_request() {
        let (entered_tx, entered_rx) = mpsc::channel();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let oracle = GateOracle { entered: Mutex::new(entered_tx), gate: Arc::clone(&gate) };
        let service = Service::start(
            ServiceConfig::new(1).with_queue_capacity(1),
            Telemetry::new(MemorySink::new()),
        );
        let slow =
            ServiceRequest::new("r0", planted(1), vec![Box::new(oracle)], ResilientConfig::new(3));
        service.submit(slow).unwrap();
        // The worker is now parked inside the oracle, the queue empty.
        entered_rx.recv().unwrap();
        service.submit(request("r1", 2)).unwrap();
        let rejected = service.submit(request("r2", 3)).expect_err("queue is at capacity");
        assert_eq!(rejected.capacity, 1);
        assert_eq!(rejected.request.id, "r2");
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        let report = service.shutdown();
        let mut ids: Vec<String> = report.drained.iter().map(|r| r.id.clone()).collect();
        ids.sort();
        assert_eq!(ids, ["r0", "r1"]);
        assert!(report.drained.iter().all(|r| r.outcome.label() == "ok"));
        let sink = report.telemetry.sink();
        assert_eq!(sink.counter_total(Counter::RequestsAdmitted), 2);
        assert_eq!(sink.counter_total(Counter::RequestsRejected), 1);
        assert_eq!(sink.counter_total(Counter::RequestsCompleted), 2);
    }

    #[test]
    fn shutdown_drains_everything_already_queued() {
        let service = Service::start(ServiceConfig::new(2), Telemetry::disabled());
        for i in 0..6 {
            service.submit(request(&format!("r{i}"), i as u64)).unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.drained.len(), 6);
        assert!(report.drained.iter().all(|r| r.outcome.label() == "ok"));
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        // `shutdown` consumes the handle, so exercise the draining
        // rejection through the shared state directly.
        let service = Service::start(ServiceConfig::new(1), Telemetry::disabled());
        service.shared.state.lock().unwrap().accepting = false;
        let err = service.submit(request("late", 9)).expect_err("draining rejects");
        assert_eq!(err.request.id, "late");
        service.shared.state.lock().unwrap().accepting = true;
        service.shutdown();
    }

    #[test]
    fn zero_deadline_cancels_cooperatively_without_poisoning_the_worker() {
        let service = Service::start(ServiceConfig::new(1), Telemetry::new(MemorySink::new()));
        service.submit(request("doomed", 5).with_deadline(Duration::ZERO)).unwrap();
        let doomed = service.recv().expect("one response");
        assert_eq!(doomed.outcome, RequestOutcome::DeadlineExceeded { phase: 0 });
        // The same worker (there is only one) must serve the next
        // request cleanly, byte-identical to a fresh serial run.
        service.submit(request("healthy", 5)).unwrap();
        let healthy = service.recv().expect("one response");
        let report = service.shutdown();
        let baseline = crate::resilient::reduce_cf_resilient(
            &planted(5),
            &[&GreedyOracle],
            ResilientConfig::new(3),
        )
        .expect("baseline reduction succeeds");
        let expected = RequestOutcome::Ok {
            phases: baseline.reduction.phases_used,
            set_size: baseline.reduction.records.iter().map(|r| r.independent_set_size).sum(),
            colors: baseline.reduction.total_colors,
        };
        assert_eq!(healthy.outcome, expected);
        let sink = report.telemetry.sink();
        assert_eq!(sink.counter_total(Counter::DeadlinesExceeded), 1);
        assert_eq!(sink.counter_total(Counter::RequestsFailed), 0);
    }
}
