//! The hardness direction of Theorem 1.1: solving conflict-free
//! multicoloring through a `λ`-approximate MaxIS oracle.
//!
//! Following the paper's proof verbatim: fix `k` such that `H` admits a
//! conflict-free `k`-coloring, set `ρ = λ·ln m + 1`, and run phases
//! `i = 1..ρ`. In phase `i`, build the conflict graph `G_k^i` of the
//! residual hypergraph `H_i = (V, E_i)`, obtain a `λ`-approximate
//! independent set `I_i`, color each vertex `v` with `(v,?,c) ∈ I_i`
//! using color `c` from a **fresh palette**, and remove the happy edges.
//! Per Lemma 2.1, `|I_i| ≥ |E_i|/λ`, so
//! `|E_{i+1}| ≤ (1 − 1/λ)·|E_i|` and after `ρ` phases
//! `(1 − 1/λ)^ρ · m < 1` — no edge remains. The output multicoloring is
//! conflict-free with at most `k·ρ` colors.
//!
//! [`reduce_cf_to_maxis`] implements exactly that loop, recording every
//! per-phase quantity the experiment suite (T4, F1, F2) tabulates, plus
//! the [`LocalityBudget`] that certifies the reduction's
//! polylogarithmic overhead.

use crate::components::{ComponentExecutor, ParallelismOptions};
use crate::conflict_graph::{ConflictGraph, ConflictGraphOptions};
use crate::correspondence;
use crate::recovery::{
    self, Checkpointing, DriverKind, JournalPhase, PhaseJournal, RecoveryReport,
};
use crate::workspace::{CacheLookup, PhaseWorkspace};
use pslocal_cfcolor::{checker, Multicoloring};
use pslocal_graph::{HyperedgeId, Hypergraph, IndependentSet, KernelStrategy, Palette};
use pslocal_maxis::{CrashPoint, MaxIsOracle};
use pslocal_slocal::LocalityBudget;
use pslocal_telemetry::{names, span, Counter, Histogram, Sink, Span, Telemetry};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The locality charged to one oracle invocation in the reduction's
/// [`LocalityBudget`]: `⌈log₂(max(n, 2))⌉` for an `n`-vertex input —
/// the polylogarithmic view radius footnote 2 grants the P-SLOCAL
/// oracle. Shared by the trusting and resilient drivers so their
/// accounting cannot drift.
pub fn oracle_locality(n: usize) -> usize {
    ((n.max(2) as f64).log2().ceil()) as usize
}

/// The Lemma 2.1 delivery quota `⌈edges / λ⌉`, computed exactly.
///
/// For integral λ (every certified oracle: λ = 1, Δ+1, or a color
/// count) the quotient is pure integer `div_ceil`. Fractional λ is
/// decomposed into its exact IEEE-754 rational `mant · 2^exp`
/// (`mant < 2^53`, and `λ ≥ 1` forces `exp ≥ -52`), so the quota is
/// the integer `⌈edges · 2^{-exp} / mant⌉` over `u128` — no round trip
/// through `edges as f64`, which loses bits past `2^53` and used to
/// under-count the quota by 1 at the boundary.
///
/// # Panics
///
/// Panics if `lambda < 1.0` (no λ-approximation is better than exact).
pub fn lemma_2_1_quota(edges: usize, lambda: f64) -> usize {
    assert!(lambda >= 1.0, "approximation factor λ must be ≥ 1, got {lambda}");
    if edges == 0 {
        return 0;
    }
    if lambda.fract() == 0.0 && lambda <= usize::MAX as f64 {
        return edges.div_ceil(lambda as usize);
    }
    // λ is finite and ≥ 1, hence normal: λ = mant · 2^exp exactly.
    let bits = lambda.to_bits();
    let mant = (1u128 << 52) | (bits as u128 & ((1 << 52) - 1));
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1075;
    if exp >= 0 {
        // Every f64 with a nonnegative unbiased mantissa exponent is an
        // integer, so reaching here means λ > usize::MAX ≥ edges.
        return 1;
    }
    // `exp ∈ [-52, -1]`: the numerator is < 2^(64+52), comfortably u128.
    let num = (edges as u128) << (-exp as u32);
    num.div_ceil(mant) as usize
}

/// The largest residual edge count a phase may leave behind under the
/// Lemma 2.1 geometric-decay invariant: `⌊(1 − 1/λ)·|E_i|⌋`. Shared by
/// both drivers' decay checks and the recovery layer's replay
/// re-check, so the three enforcement sites cannot drift.
pub(crate) fn decay_allowed(edges_before: usize, lambda: f64) -> usize {
    ((1.0 - 1.0 / lambda) * edges_before as f64).floor() as usize
}

/// One phase's commit, exactly as both drivers (and journal replay)
/// perform it: decode the partial coloring from the accepted
/// independent set (Lemma 2.1 b), merge it under the phase's fresh
/// palette, and drop the edges it made happy. `keep_pos` holds the
/// survivors' positions *within the incoming residual* — their
/// hyperedge ids inside `cg`'s hypergraph, which is what the
/// incremental conflict-graph restriction consumes.
pub(crate) struct PhaseCommit {
    pub keep_pos: Vec<HyperedgeId>,
    pub edges_after: usize,
}

/// The single shared implementation of the phase commit. The trusting
/// driver, the resilient driver, and journal replay all call this one
/// function, which is what makes a resumed run byte-identical to an
/// uninterrupted one *by construction* rather than by parallel
/// maintenance of three copies.
pub(crate) fn commit_phase(
    h: &Hypergraph,
    cg: &ConflictGraph,
    set: &IndependentSet,
    k: usize,
    phase: usize,
    coloring: &mut Multicoloring,
    residual: &mut Vec<HyperedgeId>,
) -> PhaseCommit {
    // Lemma 2.1 b): decode the partial coloring f_{I_i}, under a fresh
    // palette per phase.
    let decoded = correspondence::lemma_2_1b(cg, set);
    let phase_colors = correspondence::apply_palette(&decoded.coloring, Palette::phase(k, phase));
    coloring.merge(&phase_colors);
    // Remove happy edges (at least |I_i| of them by the lemma; new
    // colors never un-happy an edge, so checking the cumulative
    // coloring is sound).
    let mut keep_pos: Vec<HyperedgeId> = Vec::new();
    let mut survivors: Vec<HyperedgeId> = Vec::new();
    for (pos, &e) in residual.iter().enumerate() {
        if !checker::is_edge_happy(h, coloring, e) {
            keep_pos.push(HyperedgeId::new(pos));
            survivors.push(e);
        }
    }
    *residual = survivors;
    PhaseCommit { keep_pos, edges_after: residual.len() }
}

/// Configuration of the reduction.
#[derive(Debug, Clone, Copy)]
pub struct ReductionConfig {
    /// The palette size `k` for which the instance is promised to admit
    /// a conflict-free `k`-coloring (known by construction for planted
    /// instances).
    pub k: usize,
    /// Overrides the oracle's theoretical λ in the phase budget
    /// (useful to probe tightness; `None` = use the oracle's own λ on
    /// the first-phase conflict graph).
    pub lambda_override: Option<f64>,
    /// Hard cap on phases regardless of the computed `ρ` (safety for
    /// heuristic oracles); `None` = exactly `ρ`.
    pub max_phases: Option<usize>,
    /// Component-parallel phase execution (see [`crate::components`]).
    /// The serial default keeps the driver on its historical one-call-
    /// per-phase path; with `threads > 1`, phases whose conflict graph
    /// is disconnected solve each component concurrently and merge —
    /// sound because Lemma 2.1 applies per component and the phase
    /// budget `ρ` is unaffected.
    pub parallelism: ParallelismOptions,
    /// Which adjacency kernel the phase conflict graphs run on:
    /// [`KernelStrategy::Auto`] (the default) takes the word-parallel
    /// bit-row route when the density heuristic favors it, `Csr` and
    /// `Bitset` force a route. Every kernel produces byte-identical
    /// phase outputs (the bitset equivalence suite proves it); only the
    /// cost differs.
    pub kernel: KernelStrategy,
    /// Memoize whole-phase oracle answers by conflict-graph
    /// fingerprint, so a phase whose conflict graph structurally
    /// repeats an earlier one skips the oracle call (hits re-verify
    /// independence on the live graph before being trusted). Off by
    /// default: with the memo on, telemetry's `oracle_calls` counts
    /// only real invocations — cache traffic shows up as
    /// `oracle_cache_hit` / `oracle_cache_miss` instead.
    pub oracle_cache: bool,
}

impl ReductionConfig {
    /// Default configuration for a promised palette size `k`.
    pub fn new(k: usize) -> Self {
        ReductionConfig {
            k,
            lambda_override: None,
            max_phases: None,
            parallelism: ParallelismOptions::serial(),
            kernel: KernelStrategy::Auto,
            oracle_cache: false,
        }
    }

    /// Returns the configuration with component-parallel phase
    /// execution on up to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallelism = ParallelismOptions::with_threads(threads);
        self
    }

    /// Computes the paper's phase budget `ρ = ⌈λ·ln m⌉ + 1`.
    pub fn rho(lambda: f64, m: usize) -> usize {
        if m <= 1 {
            // (1 - 1/λ)^ρ · 1 < 1 after a single phase.
            return 1;
        }
        (lambda * (m as f64).ln()).ceil() as usize + 1
    }
}

/// Per-phase record of the reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index (0-based).
    pub phase: usize,
    /// Residual edges `|E_i|` at phase start.
    pub edges_before: usize,
    /// Vertices of the phase's conflict graph `G_k^i`.
    pub conflict_nodes: usize,
    /// Edges of `G_k^i`.
    pub conflict_edges: usize,
    /// Size of the oracle's independent set `|I_i|`.
    pub independent_set_size: usize,
    /// Happy edges removed this phase (`≥ |I_i|` by Lemma 2.1 b).
    pub edges_removed: usize,
    /// Residual edges `|E_{i+1}|` after the phase.
    pub edges_after: usize,
}

/// Result of a successful reduction run.
#[derive(Debug, Clone)]
pub struct ReductionOutcome {
    /// The conflict-free multicoloring of the input hypergraph.
    pub coloring: Multicoloring,
    /// The λ used for the phase budget.
    pub lambda: f64,
    /// The paper's phase budget `ρ = ⌈λ ln m⌉ + 1`.
    pub rho: usize,
    /// Phases actually executed (`≤ rho`).
    pub phases_used: usize,
    /// Total distinct colors used (`≤ k·phases_used ≤ k·ρ`).
    pub total_colors: usize,
    /// Per-phase records.
    pub records: Vec<PhaseRecord>,
    /// Locality accounting of the local reduction (footnote 2): one
    /// oracle call per phase; the pre/post-processing (building `G_k^i`
    /// and decoding `f_{I_i}`) is locality 1 in the primal graph of `H`
    /// (see `simulation`).
    pub locality: LocalityBudget,
}

/// Failure modes of the reduction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReductionError {
    /// Edges survived the phase budget — the supplied oracle did not
    /// deliver its promised λ (impossible for certified oracles on
    /// CF-k-colorable instances, by the paper's analysis).
    PhaseBudgetExhausted {
        /// The budget that was exhausted.
        rho: usize,
        /// Edges still unhappy.
        remaining_edges: usize,
    },
    /// The oracle claims no guarantee and no override was supplied.
    NoLambdaAvailable,
    /// A phase failed the geometric-decay invariant
    /// `|E_{i+1}| ≤ (1 − 1/λ)|E_i|` promised by Lemma 2.1 — only
    /// reportable when λ is the oracle's *certified* factor.
    DecayViolated {
        /// The offending phase.
        phase: usize,
        /// Edges before.
        before: usize,
        /// Edges after.
        after: usize,
        /// The certified λ.
        lambda: f64,
    },
    /// The resilient driver (`crate::resilient`) spent its entire
    /// retry/fallback budget inside one phase without obtaining an
    /// acceptable independent set from any oracle in the chain.
    RetriesExhausted {
        /// The phase that could not complete.
        phase: usize,
        /// Total oracle attempts spent in that phase.
        attempts: usize,
    },
    /// The caller's deadline passed before the reduction finished. Only
    /// raised at a phase boundary (cooperative cancellation — a running
    /// oracle call is never interrupted), so the partial outcome is
    /// always a whole number of committed phases.
    DeadlineExceeded {
        /// The first phase that did not run.
        phase: usize,
    },
    /// A checkpointing run could not read or durably write its phase
    /// journal, or the journal belongs to a different run
    /// configuration. The reduction state itself is fine — this is the
    /// recovery layer (`crate::recovery`) refusing to continue without
    /// durability rather than silently degrading to a non-resumable
    /// run.
    CheckpointFailed {
        /// The underlying journal error, stringified.
        message: String,
    },
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::PhaseBudgetExhausted { rho, remaining_edges } => write!(
                f,
                "phase budget ρ = {rho} exhausted with {remaining_edges} unhappy edges left"
            ),
            ReductionError::NoLambdaAvailable => {
                write!(f, "oracle provides no guarantee and no λ override was given")
            }
            ReductionError::DecayViolated { phase, before, after, lambda } => write!(
                f,
                "phase {phase}: {before} → {after} edges violates the (1 - 1/{lambda}) decay"
            ),
            ReductionError::RetriesExhausted { phase, attempts } => write!(
                f,
                "phase {phase}: no oracle produced an acceptable set in {attempts} attempts"
            ),
            ReductionError::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded at the boundary of phase {phase}")
            }
            ReductionError::CheckpointFailed { message } => {
                write!(f, "checkpointing failed: {message}")
            }
        }
    }
}

impl Error for ReductionError {}

/// Runs the Theorem 1.1 reduction: conflict-free multicoloring of `h`
/// via the MaxIS-approximation `oracle`.
///
/// # Errors
///
/// See [`ReductionError`]. On success the returned coloring is
/// conflict-free (additionally re-verified internally).
pub fn reduce_cf_to_maxis<O: MaxIsOracle + ?Sized>(
    h: &Hypergraph,
    oracle: &O,
    config: ReductionConfig,
) -> Result<ReductionOutcome, ReductionError> {
    reduce_cf_to_maxis_traced(h, oracle, config, &Telemetry::disabled())
}

/// [`reduce_cf_to_maxis`] under a telemetry pipeline: a `reduction`
/// root span contains the initial `conflict-graph` build and one
/// `phase i` span per phase, each with `oracle`/`commit`/`restrict`
/// children and `edges_removed`/`oracle_calls` counters — the span tree
/// [`PhaseTimeline`](pslocal_telemetry::PhaseTimeline) aggregates.
/// With a disabled pipeline this is exactly `reduce_cf_to_maxis`.
///
/// # Errors
///
/// See [`ReductionError`].
pub fn reduce_cf_to_maxis_traced<O: MaxIsOracle + ?Sized, S: Sink>(
    h: &Hypergraph,
    oracle: &O,
    config: ReductionConfig,
    tel: &Telemetry<S>,
) -> Result<ReductionOutcome, ReductionError> {
    reduce_cf_to_maxis_with_workspace(h, oracle, config, tel, &mut PhaseWorkspace::new())
}

/// [`reduce_cf_to_maxis_traced`] running through a caller-owned
/// [`PhaseWorkspace`], so repeated reductions (benchmark iterations,
/// experiment sweeps) recycle the phase loop's scratch buffers instead
/// of re-allocating them per run. The outcome is byte-identical to the
/// workspace-less entry points — the workspace carries no semantic
/// state (see [`crate::workspace`]).
///
/// # Errors
///
/// See [`ReductionError`].
pub fn reduce_cf_to_maxis_with_workspace<O: MaxIsOracle + ?Sized, S: Sink>(
    h: &Hypergraph,
    oracle: &O,
    config: ReductionConfig,
    tel: &Telemetry<S>,
    ws: &mut PhaseWorkspace,
) -> Result<ReductionOutcome, ReductionError> {
    reduce_trusting_inner(h, oracle, config, tel, None, ws).map(|(outcome, _)| outcome)
}

/// [`reduce_cf_to_maxis_traced`] with crash-safe checkpointing: every
/// committed phase is durably appended to the [`PhaseJournal`] in
/// `checkpoint.dir`, and with [`Checkpointing::resume`] an existing
/// journal is replayed (each record re-validated against the instance —
/// see [`crate::recovery`]) so the run continues from the last good
/// phase. The outcome is **byte-identical** to an uninterrupted run:
/// replay re-commits through the same code path and
/// [`MaxIsOracle::resume_at`] repositions per-call oracle state.
///
/// # Errors
///
/// See [`ReductionError`]; additionally
/// [`ReductionError::CheckpointFailed`] when the journal cannot be
/// read or durably written, or belongs to a different run
/// configuration.
pub fn reduce_cf_to_maxis_resumable<O: MaxIsOracle + ?Sized, S: Sink>(
    h: &Hypergraph,
    oracle: &O,
    config: ReductionConfig,
    checkpoint: &Checkpointing,
    tel: &Telemetry<S>,
) -> Result<(ReductionOutcome, RecoveryReport), ReductionError> {
    reduce_trusting_inner(h, oracle, config, tel, Some(checkpoint), &mut PhaseWorkspace::new())
}

fn reduce_trusting_inner<O: MaxIsOracle + ?Sized, S: Sink>(
    h: &Hypergraph,
    oracle: &O,
    config: ReductionConfig,
    tel: &Telemetry<S>,
    checkpoint: Option<&Checkpointing>,
    ws: &mut PhaseWorkspace,
) -> Result<(ReductionOutcome, RecoveryReport), ReductionError> {
    let root = span!(tel, names::REDUCTION);
    let m = h.edge_count();
    let k = config.k;
    let mut coloring = Multicoloring::new(h.node_count());
    let mut residual: Vec<HyperedgeId> = h.edge_ids().collect();

    // The phase budget needs λ before the first oracle call; use the
    // oracle's guarantee on the first-phase conflict graph (the largest
    // one — λ for Δ+1-type guarantees only shrinks as edges vanish).
    let first_cg =
        ConflictGraph::build_traced(h, k, ConflictGraphOptions::with_kernel(config.kernel), &root);
    let lambda = match config.lambda_override {
        Some(l) => l,
        None => match lambda_for_phase(&first_cg, oracle) {
            Some(l) => l,
            None => return Err(ReductionError::NoLambdaAvailable),
        },
    };
    let rho = ReductionConfig::rho(lambda, m);
    let budget = config.max_phases.unwrap_or(rho).min(rho);

    // The decay invariant is enforced only for oracles whose λ is
    // rigorous per instance: exact (λ = 1) and maximal-IS-based
    // (λ = Δ+1) guarantees. Asymptotic guarantees (clique removal's
    // O(n/log²n)) and conditional ones (decomposition with greedy
    // fallback) are measured by the experiments instead.
    let certified = matches!(
        oracle.guarantee(),
        pslocal_maxis::ApproxGuarantee::Exact | pslocal_maxis::ApproxGuarantee::MaxDegreePlusOne
    );
    let enforce_decay = certified && config.lambda_override.is_none() && lambda >= 1.0;

    // Phase-incremental pipeline: `G_k^{i+1}` is the induced subgraph
    // of `G_k^i` on the surviving hyperedges' triple blocks (removing
    // edges never creates conflicts), so each later phase filters the
    // retained CSR rows of the previous graph instead of re-running the
    // construction kernel — see `ConflictGraph::restrict_to_edges`.
    let mut cg = first_cg;
    let mut records = Vec::new();
    let mut phase = 0usize;
    // Cumulative oracle calls (single chain slot): the resume position
    // `MaxIsOracle::resume_at` needs to keep per-call state aligned.
    let mut oracle_calls = 0u64;
    let mut report = RecoveryReport::default();
    let mut journal: Option<PhaseJournal> = None;
    let crash = checkpoint.and_then(|c| c.crash.as_ref());

    if let Some(ckpt) = checkpoint {
        let ctx = recovery::ReplayCtx {
            h,
            driver: DriverKind::Trusting,
            k,
            lambda,
            rho,
            budget,
            threads: config.parallelism.threads,
            enforce_decay,
            chain_names: vec![oracle.name()],
        };
        let replayed =
            recovery::open_or_replay(&ctx, ckpt, &mut cg, &mut coloring, &mut residual, &root)
                .map_err(|e| ReductionError::CheckpointFailed { message: e.to_string() })?;
        phase = replayed.phase;
        records = replayed.records;
        oracle_calls = replayed.chain_calls[0];
        report = replayed.report;
        journal = Some(replayed.journal);
        oracle.resume_at(oracle_calls as usize);
    }

    while !residual.is_empty() && phase < budget {
        let phase_span = span!(root, names::PHASE, phase);
        let edges_before = residual.len();
        // The journal stores the conflict graph's fingerprint *at phase
        // start* — the graph the set is about to be chosen on. The
        // dense and CSR routes fingerprint to the same value, so the
        // journal stays kernel-agnostic.
        let cg_fingerprint = journal.as_ref().map(|_| cg.fingerprint());
        recovery::maybe_crash(crash, phase, CrashPoint::MidOracle);
        let (set, calls) = phase_independent_set(
            &cg,
            oracle,
            config.parallelism,
            config.oracle_cache,
            ws,
            &phase_span,
        );
        oracle_calls += calls as u64;
        recovery::maybe_crash(crash, phase, CrashPoint::AfterOracle);
        let commit_span = span!(phase_span, names::COMMIT);
        let commit = commit_phase(h, &cg, &set, k, phase, &mut coloring, &mut residual);
        let edges_after = commit.edges_after;
        commit_span.add(Counter::HappyEdges, (edges_before - edges_after) as u64);
        commit_span.close();
        phase_span.add(Counter::EdgesRemoved, (edges_before - edges_after) as u64);
        root.add(Counter::Phases, 1);

        records.push(PhaseRecord {
            phase,
            edges_before,
            conflict_nodes: cg.node_count(),
            conflict_edges: cg.edge_count(),
            independent_set_size: set.len(),
            edges_removed: edges_before - edges_after,
            edges_after,
        });

        if enforce_decay && edges_after > decay_allowed(edges_before, lambda) {
            return Err(ReductionError::DecayViolated {
                phase,
                before: edges_before,
                after: edges_after,
                lambda,
            });
        }

        if let Some(j) = journal.as_mut() {
            recovery::maybe_crash(crash, phase, CrashPoint::BeforeJournal);
            let write_span = span!(phase_span, names::CHECKPOINT_WRITE);
            let entry = JournalPhase {
                phase,
                // pslocal: allow(panic-path, "the fingerprint is computed earlier in this same journaling branch; None here is a control-flow bug")
                cg_fingerprint: cg_fingerprint.expect("computed while journaling"),
                set: set.vertices().iter().map(|v| v.index() as u64).collect(),
                // pslocal: allow(panic-path, "records.push happened unconditionally a few lines up, so last() always exists")
                record: records.last().expect("just pushed").clone(),
                // The trusting driver enforces no delivery quota.
                quota_required: 0,
                primary: true,
                chain_calls: vec![oracle_calls],
                retries: 0,
                fallbacks: 0,
                events: Vec::new(),
            };
            let bytes = j
                .append_phase(entry)
                .map_err(|e| ReductionError::CheckpointFailed { message: e.to_string() })?;
            write_span.add(Counter::JournalBytes, bytes);
            write_span.close();
            report.journal_bytes = bytes;
            recovery::maybe_crash(crash, phase, CrashPoint::AfterJournal);
        }

        phase += 1;
        if !residual.is_empty() && phase < budget {
            let restrict_span = span!(phase_span, names::RESTRICT);
            let restricted =
                cg.restrict_to_edges_in(&commit.keep_pos, &mut ws.arena, &mut ws.nodes);
            // Recycle the retired graph's CSR buffers (if materialized)
            // into the arena for the next phase's build.
            if let Some(old) = std::mem::replace(&mut cg, restricted).into_graph() {
                ws.arena.recycle(old);
            }
            restrict_span.add(Counter::CsrBytes, cg.csr_bytes());
        }
    }

    if !residual.is_empty() {
        return Err(ReductionError::PhaseBudgetExhausted {
            rho: budget,
            remaining_edges: residual.len(),
        });
    }

    debug_assert!(checker::is_conflict_free(h, &coloring));
    let total_colors = coloring.total_color_count();
    Ok((
        ReductionOutcome {
            coloring,
            lambda,
            rho,
            phases_used: phase,
            total_colors,
            records,
            locality: LocalityBudget {
                own_locality: 1,
                oracle_calls: phase,
                oracle_locality: oracle_locality(h.node_count()),
            },
        },
        report,
    ))
}

/// The oracle's concrete λ on a phase conflict graph, preferring the
/// dense route ([`MaxIsOracle::lambda_for_dense`]) when the graph was
/// built on the bitset kernel, so the budget computation does not
/// force a CSR materialization.
pub(crate) fn lambda_for_phase<O: MaxIsOracle + ?Sized>(
    cg: &ConflictGraph,
    oracle: &O,
) -> Option<f64> {
    if let Some(bits) = cg.bitset() {
        if let Some(l) = oracle.lambda_for_dense(bits) {
            return Some(l);
        }
    }
    oracle.lambda_for(cg.graph())
}

/// Obtains one phase's independent set. The serial path (one thread,
/// or a connected/empty conflict graph) is a single whole-graph oracle
/// call with the drivers' historical span shape: an `oracle` span
/// directly under the phase span, indexed 0 — dispatched to the
/// word-parallel dense kernel ([`MaxIsOracle::independent_set_dense`])
/// when the graph was built on the bitset route and the oracle
/// supports it, byte-identical by the oracle's dense contract. With
/// `threads > 1` and a disconnected conflict graph, each component is
/// solved concurrently on the [`ComponentExecutor`] — the phase span
/// gains `components` / `largest_component` counters and one
/// `component` span per component (each holding its own `oracle`
/// child), and the per-component sets are merged under the
/// machine-checked disjointness invariant. `Counter::OracleCalls`
/// counts every oracle invocation either way.
///
/// With `use_cache`, the workspace's fingerprint-keyed memo is
/// consulted first: a hit (re-verified independent on the live graph)
/// answers the phase with **zero** oracle invocations and an
/// `oracle_cache_hit` count instead of `oracle_calls`; a miss counts
/// `oracle_cache_miss` and memoizes the serial whole-graph answer.
///
/// Returns the set alongside the number of `independent_set`
/// invocations it consumed (0 cache hit, 1 serial, one per component
/// parallel) — the quantity the checkpointing layer journals as the
/// oracle's resume position.
fn phase_independent_set<O: MaxIsOracle + ?Sized, S: Sink>(
    cg: &ConflictGraph,
    oracle: &O,
    parallelism: ParallelismOptions,
    use_cache: bool,
    ws: &mut PhaseWorkspace,
    phase_span: &Span<'_, S>,
) -> (IndependentSet, usize) {
    let fingerprint = use_cache.then(|| cg.fingerprint());
    if let Some(fp) = fingerprint {
        match ws.cache.get_verified(fp, cg) {
            CacheLookup::Hit(set) => {
                phase_span.add(Counter::OracleCacheHits, 1);
                return (set, 0);
            }
            CacheLookup::Reject => {
                // Fingerprint collision: the memoized set is not
                // independent in this graph. The colliding entry has
                // been evicted; fall through to the oracle.
                phase_span.add(Counter::OracleCacheRejects, 1);
                phase_span.add(Counter::OracleCacheMisses, 1);
            }
            CacheLookup::Miss => phase_span.add(Counter::OracleCacheMisses, 1),
        }
    }
    if parallelism.is_parallel() {
        let exec = ComponentExecutor::new(cg.graph(), parallelism);
        if exec.should_decompose() {
            let parts = exec.partition().len();
            phase_span.add(Counter::Components, parts as u64);
            phase_span.add(Counter::LargestComponent, exec.partition().largest_size() as u64);
            let locals = exec.run(|c, sub| {
                let comp_span = span!(phase_span, names::COMPONENT, c);
                let oracle_span = span!(comp_span, names::ORACLE, 0);
                let set = oracle.independent_set(sub);
                oracle_span.sample(Histogram::IndependentSetSize, set.len() as u64);
                oracle_span.close();
                comp_span.add(Counter::ParallelOracleCalls, 1);
                set
            });
            phase_span.add(Counter::OracleCalls, parts as u64);
            return (exec.merge(locals), parts);
        }
    }
    let oracle_span = span!(phase_span, names::ORACLE, 0);
    let set = match cg.bitset() {
        Some(bits) if oracle.supports_dense() => {
            oracle.independent_set_dense(bits, &mut ws.scratch)
        }
        _ => oracle.independent_set(cg.graph()),
    };
    oracle_span.sample(Histogram::IndependentSetSize, set.len() as u64);
    oracle_span.close();
    phase_span.add(Counter::OracleCalls, 1);
    if let Some(fp) = fingerprint {
        ws.cache.insert(fp, set.vertices().to_vec());
    }
    (set, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::CrashPlan;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_maxis::{
        CliqueRemovalOracle, DecompositionOracle, ExactOracle, GreedyOracle, LubyOracle,
    };
    use rand::SeedableRng;

    fn planted(seed: u64, n: usize, m: usize, k: usize) -> Hypergraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph
    }

    fn check_outcome(h: &Hypergraph, k: usize, out: &ReductionOutcome) {
        assert!(checker::is_conflict_free(h, &out.coloring), "output must be conflict-free");
        assert!(out.phases_used <= out.rho);
        assert!(out.total_colors <= k * out.phases_used.max(1));
        // Palette discipline: only phase palettes appear.
        let palettes: Vec<Palette> = (0..out.phases_used).map(|i| Palette::phase(k, i)).collect();
        assert!(out.coloring.uses_only_palettes(&palettes));
        // Records are consistent.
        let mut prev = h.edge_count();
        for r in &out.records {
            assert_eq!(r.edges_before, prev);
            assert_eq!(r.edges_before - r.edges_removed, r.edges_after);
            assert!(r.edges_removed >= r.independent_set_size);
            prev = r.edges_after;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn exact_oracle_needs_one_phase() {
        let k = 3;
        let h = planted(1, 30, 12, k);
        let out = reduce_cf_to_maxis(&h, &ExactOracle, ReductionConfig::new(k)).unwrap();
        check_outcome(&h, k, &out);
        // α(G_k) = m and exact finds it: every edge happy after phase 0.
        assert_eq!(out.phases_used, 1);
        assert_eq!(out.records[0].independent_set_size, 12);
        assert!((out.lambda - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_oracle_completes_within_budget() {
        let k = 3;
        let h = planted(2, 36, 15, k);
        let out = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        check_outcome(&h, k, &out);
        assert!(out.phases_used >= 1);
        assert!(out.lambda > 1.0, "greedy's λ = Δ(G_k)+1 > 1");
    }

    #[test]
    fn luby_and_clique_removal_complete() {
        let k = 2;
        let h = planted(3, 24, 10, k);
        for oracle in
            [Box::new(LubyOracle::new(5)) as Box<dyn MaxIsOracle>, Box::new(CliqueRemovalOracle)]
        {
            let out = reduce_cf_to_maxis(&h, oracle.as_ref(), ReductionConfig::new(k))
                .unwrap_or_else(|e| panic!("oracle {} failed: {e}", oracle.name()));
            check_outcome(&h, k, &out);
        }
    }

    #[test]
    fn decomposition_oracle_completes() {
        let k = 2;
        let h = planted(4, 24, 8, k);
        let out = reduce_cf_to_maxis(&h, &DecompositionOracle::default(), ReductionConfig::new(k))
            .unwrap();
        check_outcome(&h, k, &out);
    }

    #[test]
    fn rho_formula_matches_paper() {
        // ρ = ⌈λ ln m⌉ + 1.
        assert_eq!(ReductionConfig::rho(1.0, 20), (20f64).ln().ceil() as usize + 1);
        assert_eq!(ReductionConfig::rho(2.0, 100), (2.0 * (100f64).ln()).ceil() as usize + 1);
        assert_eq!(ReductionConfig::rho(5.0, 1), 1);
        assert_eq!(ReductionConfig::rho(5.0, 0), 1);
    }

    #[test]
    fn lambda_override_controls_budget() {
        let k = 2;
        let h = planted(5, 20, 6, k);
        let config = ReductionConfig { lambda_override: Some(1.0), ..ReductionConfig::new(k) };
        // Exact oracle with λ = 1: budget ρ = ln 6 + 1 ≈ 3; exact
        // finishes in 1.
        let out = reduce_cf_to_maxis(&h, &ExactOracle, config).unwrap();
        assert_eq!(out.phases_used, 1);
        assert_eq!(out.rho, ReductionConfig::rho(1.0, 6));
    }

    #[test]
    fn starving_budget_reports_exhaustion() {
        let k = 3;
        let h = planted(6, 36, 20, k);
        let config = ReductionConfig {
            lambda_override: Some(1000.0), // huge ρ, but…
            max_phases: Some(0),           // …no phases allowed
            ..ReductionConfig::new(k)
        };
        let err = reduce_cf_to_maxis(&h, &ExactOracle, config).unwrap_err();
        assert!(matches!(err, ReductionError::PhaseBudgetExhausted { remaining_edges: 20, .. }));
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn empty_hypergraph_is_trivially_colored() {
        let h = Hypergraph::from_edges(5, Vec::<Vec<usize>>::new()).unwrap();
        let out = reduce_cf_to_maxis(&h, &ExactOracle, ReductionConfig::new(2)).unwrap();
        assert_eq!(out.phases_used, 0);
        assert_eq!(out.total_colors, 0);
        assert!(out.records.is_empty());
    }

    #[test]
    fn locality_budget_is_polylog() {
        let k = 3;
        let h = planted(7, 40, 18, k);
        let out = reduce_cf_to_maxis(&h, &ExactOracle, ReductionConfig::new(k)).unwrap();
        // 1 phase · log-locality oracle + 1: comfortably polylog.
        assert!(out.locality.is_polylog(h.node_count(), 4.0, 2));
    }

    #[test]
    fn quota_is_exact_at_integral_boundaries() {
        // ⌈edges/λ⌉ at edges = k·λ and k·λ ± 1 for integral λ.
        for lambda in [1usize, 2, 3, 7, 64] {
            let l = lambda as f64;
            for k in [0usize, 1, 5, 1000] {
                assert_eq!(lemma_2_1_quota(k * lambda, l), k, "edges = {k}·{lambda}");
                assert_eq!(lemma_2_1_quota(k * lambda + 1, l), k + 1, "edges = {k}·{lambda}+1");
                if k >= 1 {
                    let expect = if lambda == 1 { k - 1 } else { k };
                    assert_eq!(
                        lemma_2_1_quota(k * lambda - 1, l),
                        expect,
                        "edges = {k}·{lambda}-1"
                    );
                }
            }
        }
    }

    #[test]
    fn quota_survives_f64_precision_loss() {
        // 2^53 + 1 is not representable in f64: the old epsilon-fudged
        // float ceiling rounded it down and under-demanded by one. The
        // integer path is exact.
        let edges = (1usize << 53) + 1;
        assert_eq!(lemma_2_1_quota(edges, 1.0), edges);
        assert_eq!(lemma_2_1_quota(edges, 2.0), edges.div_ceil(2));
    }

    #[test]
    fn quota_fractional_lambda_is_exact_ceiling() {
        assert_eq!(lemma_2_1_quota(10, 2.5), 4);
        assert_eq!(lemma_2_1_quota(7, 2.5), 3); // ⌈2.8⌉
        assert_eq!(lemma_2_1_quota(0, 2.5), 0);
    }

    #[test]
    fn quota_fractional_lambda_survives_f64_precision_loss() {
        // 2^53 + 1 is unrepresentable in f64, so the old fractional
        // path computed ⌈(2^53) / 2.5⌉ = 3602879701896397 — one short
        // of the true ⌈(2^53 + 1) / 2.5⌉ = ⌈(2^54 + 2) / 5⌉. The exact
        // rational path gets the boundary right.
        let edges = (1usize << 53) + 1;
        assert_eq!(lemma_2_1_quota(edges, 2.5), 3_602_879_701_896_398);
        // And the quota stays monotone across the 2^53 boundary.
        assert!(lemma_2_1_quota(edges, 2.5) >= lemma_2_1_quota(1usize << 53, 2.5));
    }

    #[test]
    fn quota_handles_extreme_lambdas() {
        // λ larger than any edge count: one surviving phase delivers all.
        assert_eq!(lemma_2_1_quota(10, 1e300), 1);
        assert_eq!(lemma_2_1_quota(usize::MAX, 2.0f64.powi(64) * 1.5), 1);
        // λ barely above 1 still demands everything.
        let just_above_one = f64::from_bits(1.0f64.to_bits() + 1);
        assert_eq!(lemma_2_1_quota(1usize << 40, just_above_one), 1usize << 40);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn quota_rejects_sub_unit_lambda() {
        let _ = lemma_2_1_quota(10, 0.5);
    }

    #[test]
    fn oracle_locality_is_ceil_log2() {
        assert_eq!(oracle_locality(0), 1);
        assert_eq!(oracle_locality(1), 1);
        assert_eq!(oracle_locality(2), 1);
        assert_eq!(oracle_locality(3), 2);
        assert_eq!(oracle_locality(1024), 10);
        assert_eq!(oracle_locality(1025), 11);
    }

    #[test]
    fn traced_run_produces_a_consistent_span_tree() {
        use pslocal_telemetry::{MemorySink, PhaseTimeline};
        let k = 3;
        let h = planted(9, 36, 16, k);
        let tel = Telemetry::new(MemorySink::new());
        let out = reduce_cf_to_maxis_traced(&h, &GreedyOracle, ReductionConfig::new(k), &tel)
            .expect("clean run");
        let sink = tel.into_sink();
        assert!(sink.open_spans().is_empty(), "all spans closed");
        let spans = sink.spans();
        let timeline = PhaseTimeline::from_spans(&spans).expect("reduction root");
        assert_eq!(timeline.phases.len(), out.phases_used);
        assert_eq!(sink.counter_total(Counter::Phases), out.phases_used as u64);
        assert_eq!(sink.counter_total(Counter::OracleCalls), out.phases_used as u64);
        assert_eq!(sink.counter_total(Counter::EdgesRemoved), h.edge_count() as u64);
        // Each phase's span-side edges_removed matches its record.
        for (timing, record) in timeline.phases.iter().zip(&out.records) {
            assert_eq!(timing.phase as usize, record.phase);
            assert_eq!(timing.edges_removed as usize, record.edges_removed);
            assert_eq!(timing.oracle_attempts, 1);
        }
        // The untraced entry point yields the identical outcome.
        let base = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        assert_eq!(base.records, out.records);
    }

    #[test]
    fn parallel_config_reproduces_the_serial_run() {
        // Greedy decomposes over components (its global pick sequence
        // restricted to a component equals the local sequence), so the
        // parallel driver must reproduce the serial run verbatim —
        // whether a phase takes the fast path or actually decomposes.
        let k = 3;
        let h = planted(11, 36, 16, k);
        let serial = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        let par =
            reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k).with_threads(4)).unwrap();
        assert_eq!(serial.records, par.records);
        assert_eq!(serial.coloring, par.coloring);
        assert_eq!(serial.total_colors, par.total_colors);
    }

    #[test]
    fn luby_parallel_config_reproduces_the_serial_run() {
        // Luby derives each component's RNG stream from the component's
        // own fingerprint, so — like every other oracle — it must not
        // care whether the executor decomposes a phase or not.
        use pslocal_graph::generators::hyper::multi_component_cf_instance;
        let k = 3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let h = multi_component_cf_instance(&mut rng, PlantedCfParams::new(24, 8, k), 4).hypergraph;
        let oracle = LubyOracle::new(5);
        let serial = reduce_cf_to_maxis(&h, &oracle, ReductionConfig::new(k)).unwrap();
        let par = reduce_cf_to_maxis(&h, &oracle, ReductionConfig::new(k).with_threads(4)).unwrap();
        assert_eq!(serial.records, par.records);
        assert_eq!(serial.coloring, par.coloring);
    }

    #[test]
    fn phase_colors_never_unhappy_previous_edges() {
        // Regression for the monotonicity argument: once an edge leaves
        // the residual set it stays happy to the end.
        let k = 3;
        let h = planted(8, 36, 16, k);
        let out = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        assert!(checker::is_conflict_free(&h, &out.coloring));
        // Re-derive cumulative unhappy counts from records.
        let final_unhappy = out.records.last().unwrap().edges_after;
        assert_eq!(final_unhappy, 0);
    }

    #[test]
    fn forced_kernels_produce_identical_runs() {
        // Csr and Bitset pin opposite routes; Auto picks one of them.
        // All three runs must be byte-identical — the kernels differ in
        // cost only.
        let k = 3;
        for (seed, n, m) in [(34u64, 36, 15), (35, 24, 40)] {
            let h = planted(seed, n, m, k);
            let run = |kernel| {
                reduce_cf_to_maxis(
                    &h,
                    &GreedyOracle,
                    ReductionConfig { kernel, ..ReductionConfig::new(k) },
                )
                .unwrap()
            };
            let csr = run(KernelStrategy::Csr);
            let dense = run(KernelStrategy::Bitset);
            let auto = run(KernelStrategy::Auto);
            assert_eq!(csr.records, dense.records);
            assert_eq!(csr.coloring, dense.coloring);
            assert_eq!(csr.lambda, dense.lambda);
            assert_eq!(csr.records, auto.records);
            assert_eq!(csr.coloring, auto.coloring);
        }
    }

    #[test]
    fn workspace_reuse_is_byte_identical() {
        // Two back-to-back reductions through ONE workspace must equal
        // two fresh-allocation runs — the workspace carries buffers,
        // never semantic state. PrecisionOracle(4) forces multi-phase
        // runs so the restriction arena actually gets recycled.
        let k = 3;
        let h1 = planted(31, 40, 18, k);
        let h2 = planted(32, 36, 15, k);
        let oracle = pslocal_maxis::PrecisionOracle::new(4.0);
        let base1 = reduce_cf_to_maxis(&h1, &oracle, ReductionConfig::new(k)).unwrap();
        assert!(base1.phases_used >= 2, "need a multi-phase run to exercise reuse");
        let base2 = reduce_cf_to_maxis(&h2, &oracle, ReductionConfig::new(k)).unwrap();
        let tel = Telemetry::disabled();
        let mut ws = PhaseWorkspace::new();
        let out1 =
            reduce_cf_to_maxis_with_workspace(&h1, &oracle, ReductionConfig::new(k), &tel, &mut ws)
                .unwrap();
        let out2 =
            reduce_cf_to_maxis_with_workspace(&h2, &oracle, ReductionConfig::new(k), &tel, &mut ws)
                .unwrap();
        assert_eq!(out1.records, base1.records);
        assert_eq!(out1.coloring, base1.coloring);
        assert_eq!(out2.records, base2.records);
        assert_eq!(out2.coloring, base2.coloring);
    }

    #[test]
    fn oracle_cache_answers_repeats_without_oracle_calls() {
        use pslocal_telemetry::MemorySink;
        let k = 3;
        let h = planted(33, 36, 15, k);
        let config = ReductionConfig { oracle_cache: true, ..ReductionConfig::new(k) };
        let base = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        let mut ws = PhaseWorkspace::new();
        // First run: every phase misses and memoizes.
        let tel1 = Telemetry::new(MemorySink::new());
        let out1 =
            reduce_cf_to_maxis_with_workspace(&h, &GreedyOracle, config, &tel1, &mut ws).unwrap();
        let sink1 = tel1.into_sink();
        assert_eq!(sink1.counter_total(Counter::OracleCacheHits), 0);
        assert_eq!(sink1.counter_total(Counter::OracleCacheMisses), out1.phases_used as u64);
        assert_eq!(sink1.counter_total(Counter::OracleCalls), out1.phases_used as u64);
        // Second identical run through the same workspace: every phase
        // repeats a memoized conflict graph — zero oracle invocations.
        let tel2 = Telemetry::new(MemorySink::new());
        let out2 =
            reduce_cf_to_maxis_with_workspace(&h, &GreedyOracle, config, &tel2, &mut ws).unwrap();
        let sink2 = tel2.into_sink();
        assert_eq!(sink2.counter_total(Counter::OracleCacheHits), out2.phases_used as u64);
        assert_eq!(sink2.counter_total(Counter::OracleCalls), 0);
        // Memoization never changes the answer.
        assert_eq!(out1.records, base.records);
        assert_eq!(out1.coloring, base.coloring);
        assert_eq!(out2.records, base.records);
        assert_eq!(out2.coloring, base.coloring);
    }

    #[test]
    fn oracle_cache_collision_is_rejected_evicted_and_counted() {
        use pslocal_telemetry::MemorySink;
        let k = 2;
        let h = planted(7, 24, 10, k);
        let config = ReductionConfig { oracle_cache: true, ..ReductionConfig::new(k) };
        let base = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        // Poison the memo under the *live* first-phase fingerprint with
        // a set that is not independent in G_k — the situation a 64-bit
        // fingerprint collision would produce. Conflict-graph nodes 0
        // and 1 are two color slots of hyperedge 0's first vertex,
        // always adjacent (same-vertex clique).
        let fp = ConflictGraph::build(&h, k).fingerprint();
        let mut ws = PhaseWorkspace::new();
        ws.cache.insert(fp, vec![pslocal_graph::NodeId::new(0), pslocal_graph::NodeId::new(1)]);
        let tel = Telemetry::new(MemorySink::new());
        let out =
            reduce_cf_to_maxis_with_workspace(&h, &GreedyOracle, config, &tel, &mut ws).unwrap();
        let sink = tel.into_sink();
        // Pre-fix: the collision was silently counted as a plain miss
        // and the poisoned entry stayed cached (LRU-refreshed, even).
        assert_eq!(sink.counter_total(Counter::OracleCacheRejects), 1);
        assert_eq!(sink.counter_total(Counter::OracleCacheHits), 0);
        assert_eq!(sink.counter_total(Counter::OracleCacheMisses), out.phases_used as u64);
        // The run falls through to the oracle and stays byte-identical
        // to an uncached baseline.
        assert_eq!(out.records, base.records);
        assert_eq!(out.coloring, base.coloring);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pslocal-reduction-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes_as_noop() {
        let k = 3;
        let h = planted(21, 36, 15, k);
        let base = reduce_cf_to_maxis(&h, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        let dir = ckpt_dir("clean");
        let tel = Telemetry::disabled();
        let (out, report) = reduce_cf_to_maxis_resumable(
            &h,
            &GreedyOracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir),
            &tel,
        )
        .unwrap();
        assert_eq!(out.records, base.records);
        assert_eq!(out.coloring, base.coloring);
        assert!(!report.resumed);
        assert!(report.journal_bytes > 0);
        // Resuming the *completed* journal replays every phase and runs
        // zero new ones — the outcome is byte-identical.
        let (again, report) = reduce_cf_to_maxis_resumable(
            &h,
            &GreedyOracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir).resuming(),
            &tel,
        )
        .unwrap();
        assert!(report.resumed);
        assert_eq!(report.phases_recovered, base.records.len());
        assert_eq!(again.records, base.records);
        assert_eq!(again.coloring, base.coloring);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_injected_crash_is_byte_identical() {
        // A deliberately weak (λ = 4) oracle guarantees a multi-phase
        // run; Greedy would finish planted instances in one phase.
        let k = 3;
        let h = planted(22, 40, 18, k);
        let oracle = pslocal_maxis::PrecisionOracle::new(4.0);
        let base = reduce_cf_to_maxis(&h, &oracle, ReductionConfig::new(k)).unwrap();
        assert!(base.phases_used >= 2, "need a multi-phase run to interrupt");
        let dir = ckpt_dir("crash");
        let tel = Telemetry::disabled();
        // Kill the run right before phase 1's journal append: phase 1's
        // work is lost, phase 0 survives on disk.
        let ckpt =
            Checkpointing::new(&dir).with_crash(CrashPlan::panicking(1, CrashPoint::BeforeJournal));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reduce_cf_to_maxis_resumable(&h, &oracle, ReductionConfig::new(k), &ckpt, &tel)
        }))
        .expect_err("kill point fires");
        assert!(died.downcast_ref::<pslocal_maxis::CrashSignal>().is_some());
        let (out, report) = reduce_cf_to_maxis_resumable(
            &h,
            &oracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir).resuming(),
            &tel,
        )
        .unwrap();
        assert!(report.resumed);
        assert_eq!(report.phases_recovered, 1);
        assert_eq!(out.records, base.records);
        assert_eq!(out.coloring, base.coloring);
        assert_eq!(out.total_colors, base.total_colors);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_under_a_different_config_is_refused() {
        let k = 3;
        let h = planted(23, 36, 15, k);
        let dir = ckpt_dir("mismatch");
        let tel = Telemetry::disabled();
        reduce_cf_to_maxis_resumable(
            &h,
            &GreedyOracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir),
            &tel,
        )
        .unwrap();
        // Same journal, different oracle: the header no longer matches
        // and the layer refuses rather than silently clobbering it.
        let err = reduce_cf_to_maxis_resumable(
            &h,
            &ExactOracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir).resuming(),
            &tel,
        )
        .unwrap_err();
        assert!(matches!(err, ReductionError::CheckpointFailed { .. }), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
