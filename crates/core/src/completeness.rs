//! Theorem 1.1, end to end: *polylogarithmic maximum independent set
//! approximation is P-SLOCAL-complete*.
//!
//! The theorem has two halves, and this module runs both on concrete
//! instances and assembles a machine-checked [`CompletenessReport`]:
//!
//! * **containment** — the decomposition-based SLOCAL algorithm
//!   approximates MaxIS within `⌈log₂ n⌉ + 1` with polylog locality
//!   ([`containment`](crate::containment));
//! * **hardness** — the P-SLOCAL-complete conflict-free multicoloring
//!   problem is solved through any λ-approximate MaxIS oracle in
//!   `ρ = λ·ln m + 1` phases with `k·ρ` colors
//!   ([`reduction`](crate::reduction)).
//!
//! Together: an efficient (P-SLOCAL) MaxIS approximation exists, and if
//! MaxIS approximation were efficiently solvable *deterministically in
//! LOCAL*, so would be every P-SLOCAL problem — including MIS and
//! `(Δ+1)`-coloring, the paper's motivating open questions.

use crate::containment::{containment_certificate, ContainmentReport};
use crate::reduction::{reduce_cf_to_maxis, ReductionConfig, ReductionError, ReductionOutcome};
use pslocal_cfcolor::CfMulticoloringProblem;
use pslocal_graph::generators::hyper::PlantedCfInstance;
use pslocal_maxis::MaxIsOracle;

/// The machine-checked record of both directions of Theorem 1.1 on one
/// instance.
#[derive(Debug, Clone)]
pub struct CompletenessReport {
    /// Containment-direction certificate (on the instance's conflict
    /// graph, where the hardness reduction actually calls the oracle).
    pub containment: ContainmentReport,
    /// Hardness-direction outcome (the reduction run).
    pub hardness: ReductionOutcome,
    /// Whether the reduction's output passed the conflict-free
    /// multicoloring verifier within the `k·ρ` color budget.
    pub hardness_verified: bool,
}

/// Runs both directions of Theorem 1.1 on a planted conflict-free
/// instance with the supplied oracle.
///
/// # Errors
///
/// Propagates [`ReductionError`] from the hardness direction.
pub fn completeness_on_instance<O: MaxIsOracle + ?Sized>(
    instance: &PlantedCfInstance,
    oracle: &O,
) -> Result<CompletenessReport, ReductionError> {
    let k = instance.k;
    let h = &instance.hypergraph;

    // Hardness: CF multicoloring via the oracle.
    let hardness = reduce_cf_to_maxis(h, oracle, ReductionConfig::new(k))?;
    let budget = k * hardness.rho;
    let problem = CfMulticoloringProblem { max_colors: budget, epsilon: instance.epsilon };
    let hardness_verified = problem.verify(h, &hardness.coloring).is_ok();

    // Containment: certify the P-SLOCAL MaxIS approximation on the
    // phase-0 conflict graph (the very graph the reduction queried).
    let cg = crate::conflict_graph::ConflictGraph::build(h, k);
    let containment = containment_certificate(cg.graph());

    Ok(CompletenessReport { containment, hardness, hardness_verified })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_maxis::{DecompositionOracle, ExactOracle, GreedyOracle};
    use rand::SeedableRng;

    fn instance(seed: u64) -> PlantedCfInstance {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(30, 12, 3))
    }

    #[test]
    fn theorem_1_1_both_directions_with_exact_oracle() {
        let inst = instance(1);
        let report = completeness_on_instance(&inst, &ExactOracle).unwrap();
        assert!(report.hardness_verified);
        assert!(report.containment.lambda_verified);
        assert_eq!(report.hardness.phases_used, 1);
    }

    #[test]
    fn theorem_1_1_with_greedy_oracle() {
        let inst = instance(2);
        let report = completeness_on_instance(&inst, &GreedyOracle).unwrap();
        assert!(report.hardness_verified);
        assert!(report.hardness.total_colors <= inst.k * report.hardness.rho);
    }

    #[test]
    fn theorem_1_1_with_the_pslocal_oracle_itself() {
        // The full loop: the P-SLOCAL MaxIS approximation (containment)
        // plugged into the hardness reduction — exactly the composition
        // that makes the completeness statement meaningful.
        let inst = instance(3);
        let report = completeness_on_instance(&inst, &DecompositionOracle::default()).unwrap();
        assert!(report.hardness_verified);
        // Composed locality stays polylog.
        let n = inst.hypergraph.node_count();
        assert!(report.hardness.locality.is_polylog(n, 64.0, 2));
    }
}
