//! Poison-tolerant locking for the serving layers.
//!
//! A poisoned [`Mutex`] means some thread panicked while holding the
//! guard. For the queue/telemetry state in this workspace that is
//! recoverable: every critical section leaves the data structurally
//! valid at each await-free step (counters are plain integers, the
//! queue is a `VecDeque` mutated one element at a time), so the right
//! response is to keep serving with the data as it stands, not to
//! cascade the panic into every other connection thread. The
//! `panic-path` lint (`pslocal lint`) bans bare `.lock().unwrap()` in
//! library code; this helper is the sanctioned alternative.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires `m`, recovering the guard if a previous holder panicked.
///
/// Use this instead of `m.lock().unwrap()` whenever the protected
/// state remains valid across a panic (see the module docs). If an
/// invariant genuinely cannot survive a poisoned section, handle the
/// [`PoisonError`] explicitly at the call site instead.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }
}
