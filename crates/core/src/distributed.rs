//! The reduction, executed distributedly: every oracle call runs on
//! the LOCAL simulator, and the total round bill is charged through
//! the `G_k`-inside-`H` host simulation.
//!
//! This module composes three claims the paper makes in passing into
//! one executable pipeline:
//!
//! 1. the conflict graph can be simulated in `H` with dilation 1
//!    ([`simulation`](crate::simulation)), so one `G_k` round costs one
//!    round in (the primal graph of) `H`;
//! 2. a `λ`-approximate MaxIS can be computed *distributedly* — here by
//!    Luby's algorithm, whose MIS is a `(Δ+1)`-approximation;
//! 3. the phased reduction therefore runs entirely in the LOCAL model
//!    on `H`, with total rounds `Σ_phases rounds(Luby on G_k^i) ×
//!    dilation`.
//!
//! With a *randomized* oracle this yields a randomized LOCAL algorithm
//! for conflict-free multicoloring — the deterministic analogue is
//! precisely what Theorem 1.1 shows would derandomize all of P-SLOCAL.
//!
//! The pipeline is generic over the oracle
//! ([`distributed_reduction_with`]), and the round accounting is
//! fault-aware: steps an oracle call *stalls* for (reported through
//! [`MaxIsOracle::stalled_steps`], injected by
//! `pslocal_maxis::FaultyOracle`) are billed as dropped host rounds in
//! [`DistributedPhase::stalled_rounds`] — on clean runs the field is 0
//! and the bill reduces to the paper's.

use crate::conflict_graph::ConflictGraph;
use crate::correspondence;
use crate::reduction::{ReductionConfig, ReductionError};
use crate::simulation::simulate_in_hypergraph;
use pslocal_cfcolor::{checker, Multicoloring};
use pslocal_graph::{HyperedgeId, Hypergraph, Palette};
use pslocal_maxis::{LubyOracle, MaxIsOracle};
use serde::{Deserialize, Serialize};

/// Per-phase record of the distributed run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedPhase {
    /// Phase index.
    pub phase: usize,
    /// Residual edges at phase start.
    pub edges_before: usize,
    /// Oracle (Luby) rounds on this phase's conflict graph.
    pub oracle_rounds: usize,
    /// Host dilation of the phase's simulation (≤ 1 by construction).
    pub dilation: usize,
    /// Host rounds dropped waiting on a stalled oracle call (0 on
    /// clean runs; populated under fault injection).
    pub stalled_rounds: usize,
    /// `H`-rounds charged for the phase:
    /// `oracle_rounds × max(dilation, 1) + stalled_rounds` plus 2
    /// rounds of gather/scatter bookkeeping.
    pub host_rounds: usize,
}

/// Outcome of the fully distributed reduction.
#[derive(Debug, Clone)]
pub struct DistributedReduction {
    /// The conflict-free multicoloring computed.
    pub coloring: Multicoloring,
    /// Per-phase accounting.
    pub phases: Vec<DistributedPhase>,
    /// Total `H`-rounds across all phases.
    pub total_host_rounds: usize,
    /// Total host rounds lost to stalled oracle calls (a summand of
    /// [`total_host_rounds`](Self::total_host_rounds)).
    pub total_stalled_rounds: usize,
    /// The phase budget `ρ` that applied.
    pub rho: usize,
}

/// Runs the reduction with the Luby LOCAL oracle, charging rounds
/// through the host simulation.
///
/// # Errors
///
/// Returns [`ReductionError::PhaseBudgetExhausted`] if edges survive
/// the `ρ` budget (cannot happen on CF-`k`-colorable instances, by the
/// paper's analysis).
pub fn distributed_reduction(
    h: &Hypergraph,
    k: usize,
    seed: u64,
) -> Result<DistributedReduction, ReductionError> {
    distributed_reduction_with(h, &LubyOracle::new(seed), k)
}

/// Runs the distributed pipeline with an arbitrary oracle.
///
/// Sequential oracles bill one oracle round per call (the footnote-2
/// black-box accounting); distributed oracles report their simulator's
/// round count through [`MaxIsOracle::independent_set_with_rounds`].
///
/// # Errors
///
/// Returns [`ReductionError::NoLambdaAvailable`] if `oracle` claims no
/// guarantee (the phase budget `ρ = ⌈λ ln m⌉ + 1` needs a λ), and
/// [`ReductionError::PhaseBudgetExhausted`] if edges survive the
/// budget.
pub fn distributed_reduction_with<O: MaxIsOracle + ?Sized>(
    h: &Hypergraph,
    oracle: &O,
    k: usize,
) -> Result<DistributedReduction, ReductionError> {
    let m = h.edge_count();
    let mut coloring = Multicoloring::new(h.node_count());
    let mut residual: Vec<HyperedgeId> = h.edge_ids().collect();

    let first_cg = ConflictGraph::build(h, k);
    let lambda = oracle.lambda_for(first_cg.graph()).ok_or(ReductionError::NoLambdaAvailable)?;
    let rho = ReductionConfig::rho(lambda, m);

    let mut phases = Vec::new();
    let mut total_host_rounds = 0usize;
    let mut total_stalled_rounds = 0usize;
    let mut phase = 0usize;
    let mut first_cg = Some(first_cg);
    while !residual.is_empty() && phase < rho {
        let cg = match first_cg.take() {
            Some(cg) => cg,
            None => {
                let (h_i, _) = h.restrict_edges(&residual);
                ConflictGraph::build(&h_i, k)
            }
        };
        let sim = simulate_in_hypergraph(&cg);
        let (set, oracle_rounds) = oracle.independent_set_with_rounds(cg.graph());
        // Rounds the host spent waiting on a slow oracle are dropped
        // rounds — the nodes idled, but the LOCAL clock still ticked.
        let stalled_rounds = oracle.stalled_steps();
        let decoded = correspondence::lemma_2_1b(&cg, &set);
        let phase_colors =
            correspondence::apply_palette(&decoded.coloring, Palette::phase(k, phase));
        coloring.merge(&phase_colors);
        let edges_before = residual.len();
        residual.retain(|&e| !checker::is_edge_happy(h, &coloring, e));

        let host_rounds = oracle_rounds * sim.rounds_per_conflict_round + stalled_rounds + 2;
        total_host_rounds += host_rounds;
        total_stalled_rounds += stalled_rounds;
        phases.push(DistributedPhase {
            phase,
            edges_before,
            oracle_rounds,
            dilation: sim.dilation,
            stalled_rounds,
            host_rounds,
        });
        phase += 1;
    }

    if !residual.is_empty() {
        return Err(ReductionError::PhaseBudgetExhausted { rho, remaining_edges: residual.len() });
    }
    debug_assert!(checker::is_conflict_free(h, &coloring));
    Ok(DistributedReduction { coloring, phases, total_host_rounds, total_stalled_rounds, rho })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
    use pslocal_maxis::{FaultKind, FaultPlan, FaultyOracle, WorstWitnessOracle};
    use rand::SeedableRng;

    fn planted(seed: u64, n: usize, m: usize, k: usize) -> Hypergraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph
    }

    #[test]
    fn distributed_run_produces_verified_coloring() {
        let h = planted(1, 40, 16, 3);
        let out = distributed_reduction(&h, 3, 7).unwrap();
        assert!(checker::is_conflict_free(&h, &out.coloring));
        assert!(!out.phases.is_empty());
        assert!(out.phases.len() <= out.rho);
    }

    #[test]
    fn dilation_one_everywhere_and_rounds_add_up() {
        let h = planted(2, 36, 12, 3);
        let out = distributed_reduction(&h, 3, 9).unwrap();
        let sum: usize = out.phases.iter().map(|p| p.host_rounds).sum();
        assert_eq!(sum, out.total_host_rounds);
        assert_eq!(out.total_stalled_rounds, 0, "clean runs never stall");
        for p in &out.phases {
            assert!(p.dilation <= 1);
            assert_eq!(p.stalled_rounds, 0);
            assert_eq!(p.host_rounds, p.oracle_rounds * 1.max(p.dilation) + 2);
        }
    }

    #[test]
    fn distributed_run_is_seed_deterministic() {
        let h = planted(3, 30, 10, 2);
        let a = distributed_reduction(&h, 2, 42).unwrap();
        let b = distributed_reduction(&h, 2, 42).unwrap();
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.total_host_rounds, b.total_host_rounds);
    }

    #[test]
    fn round_bill_is_modest_on_small_instances() {
        let h = planted(4, 32, 12, 2);
        let out = distributed_reduction(&h, 2, 1).unwrap();
        // Few phases × O(log |G_k|) Luby rounds: two-digit territory.
        assert!(out.total_host_rounds < 400, "rounds = {}", out.total_host_rounds);
    }

    #[test]
    fn guarantee_free_oracle_yields_typed_error() {
        let h = planted(5, 24, 8, 2);
        let err = distributed_reduction_with(&h, &WorstWitnessOracle, 2).unwrap_err();
        assert_eq!(err, ReductionError::NoLambdaAvailable);
    }

    #[test]
    fn stalled_oracle_rounds_are_billed_as_dropped() {
        let h = planted(6, 30, 10, 2);
        // Stall the first call for 11 steps; answer correctly otherwise.
        let plan = FaultPlan::scripted(vec![Some(FaultKind::Stall(11))]);
        let faulty = FaultyOracle::new(LubyOracle::new(3), plan);
        let out = distributed_reduction_with(&h, &faulty, 2).unwrap();
        assert!(checker::is_conflict_free(&h, &out.coloring));
        assert_eq!(out.phases[0].stalled_rounds, 11);
        assert_eq!(
            out.phases[0].host_rounds,
            out.phases[0].oracle_rounds * 1.max(out.phases[0].dilation) + 11 + 2
        );
        assert_eq!(out.total_stalled_rounds, 11);
        assert!(out.phases[1..].iter().all(|p| p.stalled_rounds == 0));
    }
}
