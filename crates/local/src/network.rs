//! Networks: the communication topology of the LOCAL model.
//!
//! In the LOCAL model the input graph *is* the communication network:
//! vertices are processors with unique identifiers, edges are
//! bidirectional links, and a node refers to its incident links by
//! *port numbers* `0..deg(v)`. [`Network`] wraps a
//! [`Graph`] with an identifier assignment and the
//! port <-> neighbor correspondence.

use pslocal_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A LOCAL-model network: a graph plus unique node identifiers.
///
/// Port `p` of node `v` leads to `graph.neighbors(v)[p]`; ports are
/// consistent across rounds (the neighbor lists are immutable).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_local::Network;
///
/// let net = Network::with_identity_ids(cycle(5));
/// assert_eq!(net.node_count(), 5);
/// assert_eq!(net.id_of(pslocal_graph::NodeId::new(3)), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    graph: Graph,
    /// `ids[v]` is the unique identifier of node `v`.
    ids: Vec<u64>,
}

impl Network {
    /// Wraps `graph` with explicit unique identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != n` or the identifiers are not pairwise
    /// distinct.
    pub fn new(graph: Graph, ids: Vec<u64>) -> Self {
        assert_eq!(ids.len(), graph.node_count(), "one identifier per node required");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert!(sorted.windows(2).all(|w| w[0] != w[1]), "identifiers must be unique");
        Network { graph, ids }
    }

    /// Wraps `graph` using each node's index as its identifier.
    pub fn with_identity_ids(graph: Graph) -> Self {
        let ids = (0..graph.node_count() as u64).collect();
        Network { graph, ids }
    }

    /// Wraps `graph` with pseudo-random (but unique) identifiers derived
    /// from `seed` — useful to check that algorithms do not secretly
    /// depend on identifiers being `0..n`.
    pub fn with_scrambled_ids(graph: Graph, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = graph.node_count() as u64;
        // Unique ids in a sparse range: shuffled multiples plus offset.
        let mut ids: Vec<u64> = (0..n).map(|i| i * 7 + 13).collect();
        ids.shuffle(&mut rng);
        Network { graph, ids }
    }

    /// The underlying communication graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The unique identifier of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// Degree of `v` (the number of ports).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.graph.degree(v)
    }

    /// The neighbor behind port `p` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    #[inline]
    pub fn neighbor_at_port(&self, v: NodeId, p: usize) -> NodeId {
        self.graph.neighbors(v)[p]
    }

    /// The port of `v` that leads to neighbor `u`, if adjacent.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.graph.neighbors(v).binary_search(&u).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cycle, star};

    #[test]
    fn identity_ids() {
        let net = Network::with_identity_ids(cycle(4));
        for v in net.graph().nodes() {
            assert_eq!(net.id_of(v), v.index() as u64);
        }
    }

    #[test]
    fn scrambled_ids_are_unique_and_seeded() {
        let a = Network::with_scrambled_ids(cycle(10), 3);
        let b = Network::with_scrambled_ids(cycle(10), 3);
        let c = Network::with_scrambled_ids(cycle(10), 4);
        let ids_a: Vec<_> = a.graph().nodes().map(|v| a.id_of(v)).collect();
        let ids_b: Vec<_> = b.graph().nodes().map(|v| b.id_of(v)).collect();
        let ids_c: Vec<_> = c.graph().nodes().map(|v| c.id_of(v)).collect();
        assert_eq!(ids_a, ids_b);
        assert_ne!(ids_a, ids_c);
        let mut sorted = ids_a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    #[should_panic(expected = "must be unique")]
    fn duplicate_ids_panic() {
        let _ = Network::new(cycle(3), vec![1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "one identifier per node")]
    fn wrong_id_count_panics() {
        let _ = Network::new(cycle(3), vec![1, 2]);
    }

    #[test]
    fn ports_round_trip() {
        let net = Network::with_identity_ids(star(5));
        let center = NodeId::new(0);
        assert_eq!(net.degree(center), 4);
        for p in 0..4 {
            let u = net.neighbor_at_port(center, p);
            assert_eq!(net.port_to(center, u), Some(p));
            assert_eq!(net.port_to(u, center), Some(0));
        }
        assert_eq!(net.port_to(NodeId::new(1), NodeId::new(2)), None);
    }
}
