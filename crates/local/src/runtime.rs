//! The synchronous round engine of the LOCAL model.
//!
//! Per round, every node (1) reads the messages its neighbors sent in
//! the previous round, (2) updates its local state, and (3) emits at
//! most one message per incident link — message size is unbounded, time
//! is measured purely in rounds, exactly as in \[Lin92\]. The engine
//! enforces the model: a node's `round` function receives only its own
//! state and inbox, so after `r` rounds information has provably
//! travelled at most `r` hops.

use crate::Network;
use pslocal_graph::NodeId;
use pslocal_telemetry::{Counter, Sink, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// What a node sends at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outbox<M> {
    /// Send nothing on any port.
    Silent,
    /// Send the same message on every port.
    Broadcast(M),
    /// Per-port messages; index `p` goes to the neighbor behind port
    /// `p`. Must have length `deg(v)`; `None` entries send nothing.
    PerPort(Vec<Option<M>>),
}

/// An incoming message: the port it arrived on and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The receiving node's port the message arrived on.
    pub port: usize,
    /// The payload.
    pub message: M,
}

/// Static per-node information available at every step (the knowledge a
/// LOCAL processor starts with: its identifier, degree, and global
/// parameters `n` that algorithms in this suite assume known).
#[derive(Debug, Clone, Copy)]
pub struct NodeInfo {
    /// The node's index in the host graph (simulation-level handle).
    pub node: NodeId,
    /// The node's unique identifier.
    pub id: u64,
    /// The node's degree.
    pub degree: usize,
    /// Number of nodes in the network.
    pub n: usize,
}

/// A distributed algorithm in the LOCAL model.
///
/// Implementations are state machines: the engine calls [`init`] once
/// and then [`round`] every round until every node halts (or the round
/// limit trips). Randomized algorithms draw from the supplied per-node
/// RNG, which the engine seeds deterministically from the run seed.
///
/// [`init`]: LocalAlgorithm::init
/// [`round`]: LocalAlgorithm::round
pub trait LocalAlgorithm {
    /// Per-node state.
    type State: Clone + fmt::Debug;
    /// Message payload.
    type Message: Clone + fmt::Debug;

    /// Creates the initial state of `info.node` and its round-0 outbox.
    fn init(&self, info: NodeInfo, rng: &mut StdRng) -> (Self::State, Outbox<Self::Message>);

    /// Executes one round: consumes the inbox, mutates the state, and
    /// returns the outbox for the next round.
    fn round(
        &self,
        info: NodeInfo,
        state: &mut Self::State,
        inbox: &[Incoming<Self::Message>],
        rng: &mut StdRng,
    ) -> Outbox<Self::Message>;

    /// Whether this node's state is terminal. The engine stops when
    /// every node halts. A halted node no longer sends messages, but
    /// still *receives* (its inbox is simply dropped).
    fn is_halted(&self, state: &Self::State) -> bool;
}

/// Error returned when an execution exceeds its round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLimitExceeded {
    /// The limit that was hit.
    pub limit: usize,
    /// Number of nodes still running.
    pub unfinished: usize,
}

impl fmt::Display for RoundLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution exceeded {} rounds with {} nodes still running",
            self.limit, self.unfinished
        )
    }
}

impl Error for RoundLimitExceeded {}

/// Statistics of a completed LOCAL execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Number of rounds executed (a round-0 init counts as round 0;
    /// an algorithm whose nodes all halt at init has `rounds == 0`).
    pub rounds: usize,
    /// Total messages delivered over the whole execution.
    pub messages: usize,
    /// Messages delivered per round (index 0 = messages produced by
    /// `init` and delivered in round 1, and so on).
    pub messages_per_round: Vec<usize>,
}

/// Outcome of a LOCAL execution: final states plus the trace.
#[derive(Debug, Clone)]
pub struct Execution<S> {
    /// Final per-node states, indexed by node.
    pub states: Vec<S>,
    /// Round/message statistics.
    pub trace: ExecutionTrace,
}

/// The synchronous executor.
///
/// # Examples
///
/// Running Luby's MIS and checking the output (see
/// [`algorithms`](crate::algorithms) for the algorithm):
///
/// ```
/// use pslocal_graph::generators::random::gnp;
/// use pslocal_local::{algorithms::LubyMis, Engine, Network};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = Network::with_identity_ids(gnp(&mut rng, 50, 0.1));
/// let exec = Engine::new(&net).seed(7).run(&LubyMis)?;
/// let mis = LubyMis::members(&exec.states);
/// assert!(net.graph().is_maximal_independent_set(&mis));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Engine<'a> {
    network: &'a Network,
    seed: u64,
    max_rounds: usize,
}

impl<'a> Engine<'a> {
    /// Creates an engine for `network` with seed 0 and a default round
    /// limit of `64·(log2(n)+1) + 64` (generous for every polylog
    /// algorithm in this suite).
    pub fn new(network: &'a Network) -> Self {
        let n = network.node_count().max(2);
        let default_limit = 64 * ((usize::BITS - n.leading_zeros()) as usize + 1) + 64;
        Engine { network, seed: 0, max_rounds: default_limit }
    }

    /// Sets the randomness seed (per-node RNGs derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(mut self, limit: usize) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Runs `algorithm` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RoundLimitExceeded`] if some node is still running
    /// after the round budget.
    pub fn run<A: LocalAlgorithm>(
        &self,
        algorithm: &A,
    ) -> Result<Execution<A::State>, RoundLimitExceeded> {
        let net = self.network;
        let n = net.node_count();
        let graph = net.graph();

        let mut rngs: Vec<StdRng> = (0..n)
            .map(|v| {
                // Derive a distinct stream per node from the run seed.
                StdRng::seed_from_u64(
                    self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(v as u64 + 1)),
                )
            })
            .collect();

        let info = |v: NodeId| NodeInfo { node: v, id: net.id_of(v), degree: net.degree(v), n };

        let mut states: Vec<A::State> = Vec::with_capacity(n);
        // outboxes[v] holds what v sends between this round and the next.
        let mut outboxes: Vec<Outbox<A::Message>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            let (state, out) = algorithm.init(info(v), &mut rngs[v.index()]);
            Self::validate_outbox(&out, net.degree(v));
            states.push(state);
            outboxes.push(out);
        }

        let mut trace = ExecutionTrace { rounds: 0, messages: 0, messages_per_round: Vec::new() };
        let mut inboxes: Vec<Vec<Incoming<A::Message>>> = vec![Vec::new(); n];

        loop {
            if states.iter().all(|s| algorithm.is_halted(s)) {
                return Ok(Execution { states, trace });
            }
            if trace.rounds >= self.max_rounds {
                let unfinished = states.iter().filter(|s| !algorithm.is_halted(s)).count();
                return Err(RoundLimitExceeded { limit: self.max_rounds, unfinished });
            }

            // Deliver: everything sent after the previous round arrives
            // now, exactly one round later.
            let mut delivered = 0usize;
            for inbox in &mut inboxes {
                inbox.clear();
            }
            for v in graph.nodes() {
                match &outboxes[v.index()] {
                    Outbox::Silent => {}
                    Outbox::Broadcast(msg) => {
                        for (p, &u) in graph.neighbors(v).iter().enumerate() {
                            // pslocal: allow(panic-path, "the port network is built from an undirected graph, so every edge has a back port by construction")
                            let back_port = net.port_to(u, v).expect("symmetric adjacency");
                            let _ = p;
                            inboxes[u.index()]
                                .push(Incoming { port: back_port, message: msg.clone() });
                            delivered += 1;
                        }
                    }
                    Outbox::PerPort(slots) => {
                        for (p, slot) in slots.iter().enumerate() {
                            if let Some(msg) = slot {
                                let u = net.neighbor_at_port(v, p);
                                // pslocal: allow(panic-path, "the port network is built from an undirected graph, so every edge has a back port by construction")
                                let back_port = net.port_to(u, v).expect("symmetric adjacency");
                                inboxes[u.index()]
                                    .push(Incoming { port: back_port, message: msg.clone() });
                                delivered += 1;
                            }
                        }
                    }
                }
            }
            trace.messages += delivered;
            trace.messages_per_round.push(delivered);

            // Compute: every running node takes a step.
            for v in graph.nodes() {
                let i = v.index();
                if algorithm.is_halted(&states[i]) {
                    outboxes[i] = Outbox::Silent;
                    continue;
                }
                let out = algorithm.round(info(v), &mut states[i], &inboxes[i], &mut rngs[i]);
                Self::validate_outbox(&out, net.degree(v));
                outboxes[i] = out;
            }
            trace.rounds += 1;
        }
    }

    /// [`Engine::run`] under a telemetry pipeline: the execution is
    /// wrapped in a `local-run` span carrying the round and message
    /// totals as `local_rounds` / `local_messages` counters. With a
    /// disabled pipeline this is exactly `run`.
    ///
    /// # Errors
    ///
    /// Returns [`RoundLimitExceeded`] if some node is still running
    /// after the round budget (the span still closes, uncounted).
    pub fn run_traced<A: LocalAlgorithm, S: Sink>(
        &self,
        algorithm: &A,
        tel: &Telemetry<S>,
    ) -> Result<Execution<A::State>, RoundLimitExceeded> {
        let span = pslocal_telemetry::span!(tel, pslocal_telemetry::names::LOCAL_RUN);
        let result = self.run(algorithm);
        if let Ok(exec) = &result {
            span.add(Counter::LocalRounds, exec.trace.rounds as u64);
            span.add(Counter::LocalMessages, exec.trace.messages as u64);
        }
        result
    }

    fn validate_outbox<M>(out: &Outbox<M>, degree: usize) {
        if let Outbox::PerPort(slots) = out {
            assert_eq!(
                slots.len(),
                degree,
                "PerPort outbox must have one slot per port ({degree})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cycle, path};

    /// Flood the minimum identifier: each node repeatedly broadcasts the
    /// smallest id it has heard; halts after `diameter+1` silent-change
    /// rounds are impossible to detect locally, so this test variant
    /// runs a fixed number of rounds passed in the state.
    struct FloodMin {
        rounds: usize,
    }

    #[derive(Debug, Clone)]
    struct FloodState {
        best: u64,
        remaining: usize,
    }

    impl LocalAlgorithm for FloodMin {
        type State = FloodState;
        type Message = u64;

        fn init(&self, info: NodeInfo, _rng: &mut StdRng) -> (FloodState, Outbox<u64>) {
            (FloodState { best: info.id, remaining: self.rounds }, Outbox::Broadcast(info.id))
        }

        fn round(
            &self,
            _info: NodeInfo,
            state: &mut FloodState,
            inbox: &[Incoming<u64>],
            _rng: &mut StdRng,
        ) -> Outbox<u64> {
            for m in inbox {
                state.best = state.best.min(m.message);
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                Outbox::Silent
            } else {
                Outbox::Broadcast(state.best)
            }
        }

        fn is_halted(&self, state: &FloodState) -> bool {
            state.remaining == 0
        }
    }

    #[test]
    fn flooding_reaches_everyone_within_diameter_rounds() {
        let net = Network::with_scrambled_ids(path(8), 5);
        let diameter = 7;
        let exec = Engine::new(&net).run(&FloodMin { rounds: diameter + 1 }).unwrap();
        let min_id = net.graph().nodes().map(|v| net.id_of(v)).min().unwrap();
        assert!(exec.states.iter().all(|s| s.best == min_id));
        assert_eq!(exec.trace.rounds, diameter + 1);
    }

    #[test]
    fn information_travels_exactly_one_hop_per_round() {
        // After r rounds, a node knows the minimum of its r-ball ONLY.
        let net = Network::with_identity_ids(path(10));
        let r = 3;
        let exec = Engine::new(&net).run(&FloodMin { rounds: r }).unwrap();
        // Node 9 can have seen ids only from nodes 9-r..=9.
        assert_eq!(exec.states[9].best, (9 - r) as u64);
        // Node 0 already holds the global minimum.
        assert_eq!(exec.states[0].best, 0);
    }

    #[test]
    fn round_limit_is_enforced() {
        let net = Network::with_identity_ids(cycle(6));
        let err = Engine::new(&net).max_rounds(2).run(&FloodMin { rounds: 10 }).unwrap_err();
        assert_eq!(err.limit, 2);
        assert_eq!(err.unfinished, 6);
        assert!(err.to_string().contains("exceeded 2 rounds"));
    }

    #[test]
    fn message_accounting_matches_broadcasts() {
        let net = Network::with_identity_ids(cycle(5));
        let exec = Engine::new(&net).run(&FloodMin { rounds: 2 }).unwrap();
        // init broadcast: 2m = 10 messages; round-1 broadcast: 10 more;
        // round 2 consumes but the final outbox is silent and never
        // delivered.
        assert_eq!(exec.trace.messages, 20);
        assert_eq!(exec.trace.messages_per_round, vec![10, 10]);
    }

    /// An algorithm that halts immediately at init.
    struct Noop;
    impl LocalAlgorithm for Noop {
        type State = ();
        type Message = ();

        fn init(&self, _info: NodeInfo, _rng: &mut StdRng) -> ((), Outbox<()>) {
            ((), Outbox::Silent)
        }
        fn round(
            &self,
            _info: NodeInfo,
            _state: &mut (),
            _inbox: &[Incoming<()>],
            _rng: &mut StdRng,
        ) -> Outbox<()> {
            Outbox::Silent
        }
        fn is_halted(&self, _state: &()) -> bool {
            true
        }
    }

    #[test]
    fn instant_halt_takes_zero_rounds() {
        let net = Network::with_identity_ids(cycle(4));
        let exec = Engine::new(&net).run(&Noop).unwrap();
        assert_eq!(exec.trace.rounds, 0);
        assert_eq!(exec.trace.messages, 0);
    }

    /// Per-port echo used to verify port symmetry: node sends its id on
    /// port 0 only in round 0; receivers record (port, payload).
    struct PortProbe;

    #[derive(Debug, Clone)]
    struct ProbeState {
        received: Vec<(usize, u64)>,
        done: bool,
    }

    impl LocalAlgorithm for PortProbe {
        type State = ProbeState;
        type Message = u64;

        fn init(&self, info: NodeInfo, _rng: &mut StdRng) -> (ProbeState, Outbox<u64>) {
            let mut slots = vec![None; info.degree];
            if !slots.is_empty() {
                slots[0] = Some(info.id);
            }
            (ProbeState { received: Vec::new(), done: false }, Outbox::PerPort(slots))
        }

        fn round(
            &self,
            _info: NodeInfo,
            state: &mut ProbeState,
            inbox: &[Incoming<u64>],
            _rng: &mut StdRng,
        ) -> Outbox<u64> {
            state.received.extend(inbox.iter().map(|m| (m.port, m.message)));
            state.done = true;
            Outbox::Silent
        }

        fn is_halted(&self, state: &ProbeState) -> bool {
            state.done
        }
    }

    #[test]
    fn per_port_messages_arrive_with_correct_return_port() {
        let net = Network::with_identity_ids(path(3)); // 0-1-2
        let exec = Engine::new(&net).run(&PortProbe).unwrap();
        // Node 0's port 0 leads to node 1; node 1's port 0 leads to 0;
        // node 2's port 0 leads to node 1.
        // Node 1 receives id 0 (arriving on its port to 0 = port 0) and
        // id 2 (arriving on its port to 2 = port 1).
        let mut got = exec.states[1].received.clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (1, 2)]);
        // Node 0 receives id 1 on port 0.
        assert_eq!(exec.states[0].received, vec![(0, 1)]);
        // Node 2 receives nothing (node 1 sent only on its port 0).
        assert!(exec.states[2].received.is_empty());
    }

    #[test]
    fn traced_run_reports_rounds_and_messages() {
        use pslocal_telemetry::MemorySink;
        let net = Network::with_identity_ids(cycle(5));
        let tel = Telemetry::new(MemorySink::new());
        let exec = Engine::new(&net).run_traced(&FloodMin { rounds: 2 }, &tel).unwrap();
        let sink = tel.into_sink();
        assert!(sink.open_spans().is_empty());
        assert_eq!(sink.counter_total(Counter::LocalRounds), exec.trace.rounds as u64);
        assert_eq!(sink.counter_total(Counter::LocalMessages), exec.trace.messages as u64);
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, pslocal_telemetry::names::LOCAL_RUN);
    }

    #[test]
    fn executions_are_seed_deterministic() {
        let net = Network::with_identity_ids(cycle(12));
        let a = Engine::new(&net).seed(5).run(&FloodMin { rounds: 4 }).unwrap();
        let b = Engine::new(&net).seed(5).run(&FloodMin { rounds: 4 }).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(
            a.states.iter().map(|s| s.best).collect::<Vec<_>>(),
            b.states.iter().map(|s| s.best).collect::<Vec<_>>()
        );
    }
}
