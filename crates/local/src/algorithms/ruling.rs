//! Ruling sets: the standard generalization of MIS in the locality
//! toolbox.
//!
//! An `(α, β)`-ruling set is a vertex set `S` with pairwise distance
//! `≥ α` between members and every vertex within distance `β` of `S`.
//! An MIS is exactly a `(2, 1)`-ruling set, and an MIS of the power
//! graph `G^t` is a `(t+1, t)`-ruling set of `G` — computable in the
//! LOCAL model with a factor-`t` round overhead (each `G^t` round is
//! simulated by `t` rounds of `G`). Both facts are implemented and
//! verified here; the round accounting mirrors the simulation argument
//! used throughout the P-SLOCAL literature.

use crate::algorithms::LubyMis;
use crate::{Engine, Network, RoundLimitExceeded};
use pslocal_graph::algo::bfs_distances;
use pslocal_graph::ops::power_graph;
use pslocal_graph::{Graph, NodeId};

/// Result of a ruling-set computation.
#[derive(Debug, Clone)]
pub struct RulingSet {
    /// The members of the set.
    pub members: Vec<NodeId>,
    /// The independence parameter α (pairwise distance ≥ α).
    pub alpha: usize,
    /// The domination parameter β (everyone within β).
    pub beta: usize,
    /// LOCAL rounds charged: `t ×` the power-graph MIS rounds.
    pub local_rounds: usize,
}

/// Computes a `(t+1, t)`-ruling set of `graph` as an MIS of `G^t`,
/// using Luby's algorithm on the power graph.
///
/// LOCAL-model accounting: every round on `G^t` costs `t` rounds on
/// `G` (messages are relayed along paths of length ≤ t), so the
/// reported `local_rounds` is `t ×` the Luby round count.
///
/// # Errors
///
/// Propagates [`RoundLimitExceeded`] if Luby's algorithm exceeds its
/// (generous) budget.
///
/// # Panics
///
/// Panics if `t == 0`.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_local::algorithms::ruling::{ruling_set, verify_ruling_set};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = cycle(24);
/// let rs = ruling_set(&g, 2, 7)?;
/// assert!(verify_ruling_set(&g, &rs.members, rs.alpha, rs.beta));
/// # Ok(())
/// # }
/// ```
pub fn ruling_set(graph: &Graph, t: usize, seed: u64) -> Result<RulingSet, RoundLimitExceeded> {
    assert!(t >= 1, "t must be at least 1 (t = 1 gives an MIS)");
    let power = if t == 1 { graph.clone() } else { power_graph(graph, t) };
    let net = Network::with_identity_ids(power);
    let exec = Engine::new(&net).seed(seed).run(&LubyMis)?;
    let members = LubyMis::members(&exec.states);
    Ok(RulingSet { members, alpha: t + 1, beta: t, local_rounds: t * exec.trace.rounds })
}

/// Verifies the `(α, β)`-ruling-set property directly against `graph`:
/// members pairwise at distance ≥ α, every vertex within β of some
/// member. Vertices unreachable from any member fail domination unless
/// they are members themselves.
pub fn verify_ruling_set(graph: &Graph, members: &[NodeId], alpha: usize, beta: usize) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return members.is_empty();
    }
    // Multi-source BFS for domination; pairwise BFS for independence.
    let mut dominated = vec![u32::MAX; n];
    for &s in members {
        let dist = bfs_distances(graph, s);
        for v in 0..n {
            dominated[v] = dominated[v].min(dist[v]);
        }
    }
    if dominated.iter().any(|&d| d as usize > beta) {
        return false;
    }
    for (i, &u) in members.iter().enumerate() {
        let dist = bfs_distances(graph, u);
        for &v in &members[i + 1..] {
            if (dist[v.index()] as usize) < alpha {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cycle, grid, path};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn mis_is_a_2_1_ruling_set() {
        let g = cycle(20);
        let rs = ruling_set(&g, 1, 3).unwrap();
        assert_eq!((rs.alpha, rs.beta), (2, 1));
        assert!(verify_ruling_set(&g, &rs.members, 2, 1));
        assert!(g.is_maximal_independent_set(&rs.members));
    }

    #[test]
    fn higher_t_spreads_members_out() {
        let g = path(40);
        for t in 2..=4 {
            let rs = ruling_set(&g, t, 7).unwrap();
            assert!(
                verify_ruling_set(&g, &rs.members, t + 1, t),
                "t = {t}, members = {:?}",
                rs.members
            );
            assert!(rs.local_rounds >= rs.local_rounds / t * t);
        }
    }

    #[test]
    fn ruling_sets_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for seed in 0..3 {
            let g = gnp(&mut rng, 60, 0.08);
            let rs = ruling_set(&g, 2, seed).unwrap();
            assert!(verify_ruling_set(&g, &rs.members, 3, 2));
        }
    }

    #[test]
    fn round_accounting_scales_with_t() {
        let g = grid(8, 8);
        let r1 = ruling_set(&g, 1, 1).unwrap();
        let r3 = ruling_set(&g, 3, 1).unwrap();
        // local_rounds for t = 3 charges 3 G-rounds per power round.
        assert_eq!(r3.local_rounds % 3, 0);
        assert!(r1.local_rounds >= 1);
    }

    #[test]
    fn verifier_rejects_bad_sets() {
        let g = path(10);
        // Adjacent members violate α = 2.
        assert!(!verify_ruling_set(&g, &[NodeId::new(0), NodeId::new(1)], 2, 9));
        // An empty set dominates nothing.
        assert!(!verify_ruling_set(&g, &[], 2, 1));
        // Sparse set violates β = 1.
        assert!(!verify_ruling_set(&g, &[NodeId::new(0)], 2, 1));
        // But is fine for β = 9.
        assert!(verify_ruling_set(&g, &[NodeId::new(0)], 2, 9));
        // Empty graph, empty set: vacuously fine.
        assert!(verify_ruling_set(&Graph::empty(0), &[], 2, 1));
    }

    #[test]
    #[should_panic(expected = "t must be at least 1")]
    fn zero_t_panics() {
        let _ = ruling_set(&path(3), 0, 0);
    }
}
