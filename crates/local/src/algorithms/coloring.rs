//! Randomized `(Δ+1)`-vertex-coloring in the LOCAL model.
//!
//! The paper names `(Δ+1)`-coloring alongside MIS as the flagship
//! problem with a fast randomized algorithm \[Lub86\] and no known
//! polylog deterministic one. This module implements the classic
//! *random color trial*: every uncolored node repeatedly proposes a
//! uniformly random color from its remaining palette `{0..deg(v)}` minus
//! the colors its neighbors have fixed; a proposal sticks unless some
//! neighbor proposed or owns the same color. Each node succeeds with
//! probability at least 1/4 per attempt, so `O(log n)` iterations
//! suffice with high probability.

use crate::runtime::{Incoming, LocalAlgorithm, NodeInfo, Outbox};
use pslocal_graph::Color;
use rand::rngs::StdRng;
use rand::Rng;

/// Message of [`RandomColorTrial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialMessage {
    /// "I propose this color this iteration."
    Try(u32),
    /// "I have permanently adopted this color."
    Fixed(u32),
}

/// Sub-round of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// About to propose a color.
    Propose,
    /// About to resolve conflicts for the last proposal.
    Resolve,
}

/// Per-node state of [`RandomColorTrial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialState {
    /// Still uncolored.
    Uncolored {
        /// Colors fixed by neighbors so far (bitset over `0..deg+1`).
        taken: Vec<bool>,
        /// The current proposal, if the node is mid-iteration.
        proposal: Option<u32>,
        /// Which sub-round comes next.
        phase: Phase,
    },
    /// Permanently colored (terminal).
    Done(Color),
}

/// The random color trial algorithm.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_local::{algorithms::RandomColorTrial, Engine, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::with_identity_ids(cycle(12));
/// let exec = Engine::new(&net).seed(5).run(&RandomColorTrial)?;
/// let colors = RandomColorTrial::colors(&exec.states);
/// assert!(net.graph().is_proper_coloring(&colors));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomColorTrial;

impl RandomColorTrial {
    /// Extracts the final colors from terminal states.
    ///
    /// # Panics
    ///
    /// Panics if some node is still uncolored.
    pub fn colors(states: &[TrialState]) -> Vec<Color> {
        states
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                TrialState::Done(c) => *c,
                // pslocal: allow(panic-path, "callers invoke this only after the runtime reports completion; an uncolored node then is an algorithm bug")
                TrialState::Uncolored { .. } => panic!("node {i} still uncolored"),
            })
            .collect()
    }

    fn draw_free(taken: &[bool], rng: &mut StdRng) -> u32 {
        let free: Vec<u32> = (0..taken.len() as u32).filter(|&c| !taken[c as usize]).collect();
        assert!(!free.is_empty(), "palette exhausted — impossible with deg+1 colors");
        free[rng.gen_range(0..free.len())]
    }
}

impl LocalAlgorithm for RandomColorTrial {
    type State = TrialState;
    type Message = TrialMessage;

    fn init(&self, info: NodeInfo, rng: &mut StdRng) -> (TrialState, Outbox<TrialMessage>) {
        // Palette {0..deg}: deg+1 colors always suffice.
        let taken = vec![false; info.degree + 1];
        let proposal = Self::draw_free(&taken, rng);
        (
            TrialState::Uncolored { taken, proposal: Some(proposal), phase: Phase::Resolve },
            Outbox::Broadcast(TrialMessage::Try(proposal)),
        )
    }

    fn round(
        &self,
        _info: NodeInfo,
        state: &mut TrialState,
        inbox: &[Incoming<TrialMessage>],
        rng: &mut StdRng,
    ) -> Outbox<TrialMessage> {
        let TrialState::Uncolored { taken, proposal, phase } = state else {
            return Outbox::Silent;
        };
        match phase {
            Phase::Resolve => {
                // pslocal: allow(panic-path, "the state machine only enters Resolve after storing a proposal in the preceding Propose round")
                let mine = proposal.expect("resolve phase implies an outstanding proposal");
                // Record colors neighbors fixed in earlier rounds and
                // clashes with this round's proposals.
                let mut clash = false;
                for m in inbox {
                    match m.message {
                        TrialMessage::Fixed(c) => {
                            if (c as usize) < taken.len() {
                                taken[c as usize] = true;
                            }
                            clash |= c == mine;
                        }
                        TrialMessage::Try(c) => clash |= c == mine,
                    }
                }
                if !clash && !taken[mine as usize] {
                    *state = TrialState::Done(Color::from(mine));
                    Outbox::Broadcast(TrialMessage::Fixed(mine))
                } else {
                    *proposal = None;
                    *phase = Phase::Propose;
                    Outbox::Silent
                }
            }
            Phase::Propose => {
                // Neighbors that fixed a color in the previous resolve
                // round announce now.
                for m in inbox {
                    if let TrialMessage::Fixed(c) = m.message {
                        if (c as usize) < taken.len() {
                            taken[c as usize] = true;
                        }
                    }
                }
                let fresh = Self::draw_free(taken, rng);
                *proposal = Some(fresh);
                *phase = Phase::Resolve;
                Outbox::Broadcast(TrialMessage::Try(fresh))
            }
        }
    }

    fn is_halted(&self, state: &TrialState) -> bool {
        matches!(state, TrialState::Done(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Network};
    use pslocal_graph::algo::color_count;
    use pslocal_graph::generators::classic::{complete, cycle, path, star};
    use pslocal_graph::generators::random::{gnp, random_regular};
    use rand::SeedableRng;

    fn run_and_check(net: &Network, seed: u64) -> Vec<Color> {
        let exec = Engine::new(net).seed(seed).run(&RandomColorTrial).unwrap();
        let colors = RandomColorTrial::colors(&exec.states);
        assert!(net.graph().is_proper_coloring(&colors), "improper coloring");
        let delta = net.graph().max_degree();
        assert!(
            color_count(&colors) <= delta + 1,
            "used {} colors with Δ = {delta}",
            color_count(&colors)
        );
        colors
    }

    #[test]
    fn colors_classic_families() {
        run_and_check(&Network::with_identity_ids(path(20)), 1);
        run_and_check(&Network::with_identity_ids(cycle(15)), 2);
        run_and_check(&Network::with_identity_ids(star(10)), 3);
        let colors = run_and_check(&Network::with_identity_ids(complete(6)), 4);
        assert_eq!(color_count(&colors), 6, "K6 needs all Δ+1 colors");
    }

    #[test]
    fn colors_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for seed in 0..4 {
            let g = gnp(&mut rng, 70, 0.1);
            run_and_check(&Network::with_scrambled_ids(g, seed), seed);
        }
        let g = random_regular(&mut rng, 40, 4);
        run_and_check(&Network::with_identity_ids(g), 8);
    }

    #[test]
    fn isolated_nodes_use_color_zero() {
        let net = Network::with_identity_ids(pslocal_graph::Graph::empty(4));
        let colors = run_and_check(&net, 0);
        assert!(colors.iter().all(|&c| c == Color::new(0)));
    }

    #[test]
    fn per_node_palette_is_degree_bounded() {
        // A star: leaves have degree 1 so their colors are in {0,1},
        // even though the center has degree 9.
        let net = Network::with_identity_ids(star(10));
        let colors = run_and_check(&net, 6);
        for color in &colors[1..] {
            assert!(color.index() <= 1, "leaf color {color:?}");
        }
    }

    #[test]
    fn round_count_is_modest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gnp(&mut rng, 200, 0.08);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).seed(2).run(&RandomColorTrial).unwrap();
        assert!(exec.trace.rounds <= 50, "rounds = {}", exec.trace.rounds);
    }
}
