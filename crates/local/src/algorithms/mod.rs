//! Classic LOCAL-model algorithms, implemented as
//! [`LocalAlgorithm`](crate::LocalAlgorithm) state machines.
//!
//! * [`LubyMis`] — randomized MIS in `O(log n)` rounds w.h.p. \[Lub86\].
//! * [`RandomColorTrial`] — randomized `(Δ+1)`-coloring in `O(log n)`
//!   rounds w.h.p.
//! * [`MisFromColoring`] / [`ColorReduction`] — deterministic reductions
//!   between colorings and MIS.
//! * [`ColeVishkinRing`] — deterministic `O(log* n)` ring 3-coloring.

pub mod bfs;
pub mod cole_vishkin;
pub mod coloring;
pub mod luby;
pub mod matching;
pub mod reduce;
pub mod ruling;

pub use bfs::{BfsState, LeaderBfs};
pub use cole_vishkin::{ColeVishkinRing, CvState};
pub use coloring::{RandomColorTrial, TrialMessage, TrialState};
pub use luby::{LubyMessage, LubyMis, LubyState};
pub use matching::{maximal_matching, MaximalMatching};
pub use reduce::{ColorReduction, ColorReductionState, MisFromColoring, MisFromColoringState};
pub use ruling::{ruling_set, verify_ruling_set, RulingSet};
