//! Maximal matching via MIS on the line graph.
//!
//! A matching of `G` is an independent set of `L(G)`; a *maximal*
//! matching is an MIS of `L(G)`. Running Luby's algorithm on the line
//! graph therefore yields an `O(log n)`-round randomized LOCAL maximal
//! matching — with the standard accounting that one `L(G)` round is
//! simulated by `O(1)` rounds of `G` (adjacent line-graph vertices
//! share a `G`-endpoint, so their messages travel ≤ 2 `G`-hops).
//! Maximal matching sits alongside MIS and coloring in the paper's
//! landscape of "easy randomized, hard deterministic" LOCAL problems.

use crate::algorithms::LubyMis;
use crate::{Engine, Network, RoundLimitExceeded};
use pslocal_graph::ops::{line_graph, matching_from_line_graph_set};
use pslocal_graph::{Graph, NodeId};

/// Result of the distributed maximal-matching computation.
#[derive(Debug, Clone)]
pub struct MaximalMatching {
    /// The matched edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Luby rounds on the line graph.
    pub line_rounds: usize,
    /// Charged `G`-rounds (2 per line-graph round).
    pub local_rounds: usize,
}

/// Computes a maximal matching of `graph` by running Luby's MIS on its
/// line graph.
///
/// # Errors
///
/// Propagates [`RoundLimitExceeded`] from the MIS run.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_graph::ops::is_maximal_matching;
/// use pslocal_local::algorithms::matching::maximal_matching;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = cycle(10);
/// let m = maximal_matching(&g, 3)?;
/// assert!(is_maximal_matching(&g, &m.edges));
/// # Ok(())
/// # }
/// ```
pub fn maximal_matching(graph: &Graph, seed: u64) -> Result<MaximalMatching, RoundLimitExceeded> {
    let (lg, edges) = line_graph(graph);
    if lg.is_empty() {
        return Ok(MaximalMatching { edges: Vec::new(), line_rounds: 0, local_rounds: 0 });
    }
    let net = Network::with_identity_ids(lg);
    let exec = Engine::new(&net).seed(seed).run(&LubyMis)?;
    let set = LubyMis::members(&exec.states);
    Ok(MaximalMatching {
        edges: matching_from_line_graph_set(&edges, &set),
        line_rounds: exec.trace.rounds,
        local_rounds: 2 * exec.trace.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{complete, cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use pslocal_graph::ops::is_maximal_matching;
    use rand::SeedableRng;

    fn check(g: &Graph, seed: u64) -> usize {
        let m = maximal_matching(g, seed).unwrap();
        assert!(is_maximal_matching(g, &m.edges), "not maximal: {:?}", m.edges);
        assert_eq!(m.local_rounds, 2 * m.line_rounds);
        m.edges.len()
    }

    #[test]
    fn matches_classic_families() {
        assert_eq!(check(&path(2), 1), 1);
        assert!(check(&path(9), 2) >= 3);
        assert!(check(&cycle(12), 3) >= 4);
        // A star's matching has exactly one edge.
        assert_eq!(check(&star(8), 4), 1);
        // K_6: perfect matching possible, maximality forces ≥ 2.
        assert!(check(&complete(6), 5) >= 2);
    }

    #[test]
    fn matches_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for seed in 0..4 {
            let g = gnp(&mut rng, 50, 0.1);
            check(&g, seed);
        }
    }

    #[test]
    fn edgeless_graph_matches_nothing() {
        let g = Graph::empty(5);
        let m = maximal_matching(&g, 0).unwrap();
        assert!(m.edges.is_empty());
        assert_eq!(m.local_rounds, 0);
    }

    #[test]
    fn matching_size_is_at_least_half_maximum() {
        // Any maximal matching is a 2-approximation of the maximum one;
        // on an even path the maximum is n/2 edges.
        let g = path(20); // maximum matching = 10
        let size = check(&g, 7);
        assert!(size >= 5, "size = {size}");
    }
}
