//! Luby's randomized maximal independent set algorithm \[Lub86\].
//!
//! The paper cites this as *the* fast randomized algorithm whose missing
//! deterministic counterpart motivates the whole P-SLOCAL programme: MIS
//! has an `O(log n)`-round randomized LOCAL algorithm but only
//! exponentially slower deterministic ones were known.
//!
//! Implementation: iterations of two rounds each. In a *propose* round
//! every still-active node draws a random value and broadcasts it; in
//! the following *decide* round a node joins the MIS iff its value beats
//! every active neighbor's (ties broken by unique identifier, so the
//! winner relation is a strict total order and at least one node per
//! active component wins every iteration). Winners announce themselves;
//! their neighbors retire on receipt.

use crate::runtime::{Incoming, LocalAlgorithm, NodeInfo, Outbox};
use pslocal_graph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// Message of [`LubyMis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LubyMessage {
    /// A proposal `(random value, unique id)`; compared
    /// lexicographically.
    Value(u64, u64),
    /// "I joined the MIS."
    Join,
}

/// Lifecycle phase of an active node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// About to draw and broadcast a proposal.
    Propose,
    /// About to compare proposals and possibly join.
    Decide,
}

/// Per-node state of [`LubyMis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LubyState {
    /// Still competing; remembers the current proposal and phase.
    Active {
        /// Proposal drawn in the last propose round.
        proposal: (u64, u64),
        /// Which sub-round comes next.
        phase: Phase,
    },
    /// Joined the MIS (terminal).
    InMis,
    /// A neighbor joined; this node is out (terminal).
    Out,
}

/// Luby's MIS as a [`LocalAlgorithm`].
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_local::{algorithms::LubyMis, Engine, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::with_identity_ids(cycle(9));
/// let exec = Engine::new(&net).seed(3).run(&LubyMis)?;
/// let mis = LubyMis::members(&exec.states);
/// assert!(net.graph().is_maximal_independent_set(&mis));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LubyMis;

impl LubyMis {
    /// Extracts the MIS membership from final states.
    ///
    /// # Panics
    ///
    /// Panics if some node never decided (cannot happen for states
    /// returned by a successful [`Engine::run`](crate::Engine::run)).
    pub fn members(states: &[LubyState]) -> Vec<NodeId> {
        states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                LubyState::InMis => Some(NodeId::new(i)),
                LubyState::Out => None,
                // pslocal: allow(panic-path, "callers invoke this only after the runtime reports completion; an undecided node then is an algorithm bug")
                LubyState::Active { .. } => panic!("node {i} never decided"),
            })
            .collect()
    }
}

impl LocalAlgorithm for LubyMis {
    type State = LubyState;
    type Message = LubyMessage;

    fn init(&self, info: NodeInfo, rng: &mut StdRng) -> (LubyState, Outbox<LubyMessage>) {
        let proposal = (rng.gen::<u64>(), info.id);
        (
            LubyState::Active { proposal, phase: Phase::Decide },
            Outbox::Broadcast(LubyMessage::Value(proposal.0, proposal.1)),
        )
    }

    fn round(
        &self,
        _info: NodeInfo,
        state: &mut LubyState,
        inbox: &[Incoming<LubyMessage>],
        rng: &mut StdRng,
    ) -> Outbox<LubyMessage> {
        let LubyState::Active { proposal, phase } = *state else {
            return Outbox::Silent;
        };
        // A Join from any neighbor retires this node immediately,
        // whatever the phase.
        if inbox.iter().any(|m| m.message == LubyMessage::Join) {
            *state = LubyState::Out;
            return Outbox::Silent;
        }
        match phase {
            Phase::Decide => {
                let best_rival = inbox
                    .iter()
                    .filter_map(|m| match m.message {
                        LubyMessage::Value(v, id) => Some((v, id)),
                        LubyMessage::Join => None,
                    })
                    .max();
                if best_rival.is_none_or(|rival| proposal > rival) {
                    *state = LubyState::InMis;
                    Outbox::Broadcast(LubyMessage::Join)
                } else {
                    *state = LubyState::Active { proposal, phase: Phase::Propose };
                    Outbox::Silent
                }
            }
            Phase::Propose => {
                let (_, id) = proposal;
                let fresh = (rng.gen::<u64>(), id);
                *state = LubyState::Active { proposal: fresh, phase: Phase::Decide };
                Outbox::Broadcast(LubyMessage::Value(fresh.0, fresh.1))
            }
        }
    }

    fn is_halted(&self, state: &LubyState) -> bool {
        matches!(state, LubyState::InMis | LubyState::Out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Network};
    use pslocal_graph::generators::classic::{complete, cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    fn run_and_check(net: &Network, seed: u64) -> Vec<NodeId> {
        let exec = Engine::new(net).seed(seed).run(&LubyMis).unwrap();
        let mis = LubyMis::members(&exec.states);
        assert!(
            net.graph().is_maximal_independent_set(&mis),
            "not a maximal independent set: {mis:?}"
        );
        mis
    }

    #[test]
    fn mis_on_classic_families() {
        run_and_check(&Network::with_identity_ids(path(17)), 1);
        run_and_check(&Network::with_identity_ids(cycle(16)), 2);
        run_and_check(&Network::with_identity_ids(star(9)), 3);
        let mis = run_and_check(&Network::with_identity_ids(complete(8)), 4);
        assert_eq!(mis.len(), 1, "MIS of a clique is a single vertex");
    }

    #[test]
    fn mis_on_random_graphs_with_scrambled_ids() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for seed in 0..5 {
            let g = gnp(&mut rng, 80, 0.08);
            let net = Network::with_scrambled_ids(g, seed);
            run_and_check(&net, seed);
        }
    }

    #[test]
    fn isolated_nodes_always_join() {
        let net = Network::with_identity_ids(pslocal_graph::Graph::empty(5));
        let mis = run_and_check(&net, 0);
        assert_eq!(mis.len(), 5);
    }

    #[test]
    fn single_edge_picks_exactly_one() {
        let g = pslocal_graph::Graph::from_edges(2, [(0, 1)]).unwrap();
        let net = Network::with_identity_ids(g);
        let mis = run_and_check(&net, 9);
        assert_eq!(mis.len(), 1);
    }

    #[test]
    fn round_count_is_logarithmic_in_practice() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = gnp(&mut rng, 300, 0.05);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).seed(11).run(&LubyMis).unwrap();
        // 2 rounds per iteration; expect well under 2 * 8 * log2(300) ≈ 132.
        assert!(exec.trace.rounds <= 60, "rounds = {}", exec.trace.rounds);
    }

    #[test]
    fn different_seeds_can_give_different_sets() {
        let net = Network::with_identity_ids(cycle(21));
        let a = run_and_check(&net, 1);
        let b = run_and_check(&net, 2);
        // Overwhelmingly likely on a 21-cycle.
        assert_ne!(a, b);
    }
}
