//! Deterministic LOCAL reductions between colorings and independent
//! sets.
//!
//! Two classic deterministic building blocks:
//!
//! * [`MisFromColoring`] — given a proper `c`-coloring as input
//!   labeling, computes an MIS in `c` rounds by processing one color
//!   class per round (a color class is independent, so all its
//!   still-unblocked nodes may join simultaneously).
//! * [`ColorReduction`] — given a proper `c`-coloring, reduces it to a
//!   `(Δ+1)`-coloring in `max(c - Δ - 1, 0)` rounds by recoloring one
//!   top color class per round to the smallest free color.
//!
//! Together with Luby-type randomized routines these exhibit the classic
//! trade-off the P-SLOCAL programme formalizes: deterministic LOCAL
//! algorithms are fast *given* a good coloring, and the hard part is
//! obtaining the coloring deterministically.

use crate::runtime::{Incoming, LocalAlgorithm, NodeInfo, Outbox};
use pslocal_graph::{Color, NodeId};
use rand::rngs::StdRng;

/// Computes an MIS from a proper input coloring in `#colors` rounds.
///
/// The input coloring is part of the *local input* of each node (in the
/// LOCAL model every node knows its own input label), modelled here as a
/// vector indexed by node.
///
/// # Examples
///
/// ```
/// use pslocal_graph::algo::greedy_coloring_identity;
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_local::{algorithms::MisFromColoring, Engine, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = cycle(10);
/// let coloring = greedy_coloring_identity(&g);
/// let algo = MisFromColoring::new(coloring);
/// let net = Network::with_identity_ids(g);
/// let exec = Engine::new(&net).run(&algo)?;
/// let mis = MisFromColoring::members(&exec.states);
/// assert!(net.graph().is_maximal_independent_set(&mis));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MisFromColoring {
    input: Vec<Color>,
    color_count: usize,
}

/// Per-node state of [`MisFromColoring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisFromColoringState {
    /// The node's input color (its scheduled round).
    color: u32,
    /// Rounds already executed.
    clock: u32,
    /// Decision: `None` while waiting, then joined or blocked.
    decided: Option<bool>,
}

/// Message of [`MisFromColoring`]: "I joined".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Joined;

impl MisFromColoring {
    /// Creates the algorithm for the given proper input coloring.
    pub fn new(input: Vec<Color>) -> Self {
        let color_count = input.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        MisFromColoring { input, color_count }
    }

    /// Number of rounds the schedule needs (the largest color + 1).
    pub fn schedule_length(&self) -> usize {
        self.color_count
    }

    /// Extracts MIS membership from final states.
    ///
    /// # Panics
    ///
    /// Panics if some node never decided.
    pub fn members(states: &[MisFromColoringState]) -> Vec<NodeId> {
        states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.decided {
                Some(true) => Some(NodeId::new(i)),
                Some(false) => None,
                // pslocal: allow(panic-path, "callers invoke this only after the runtime reports completion; an undecided node then is an algorithm bug")
                None => panic!("node {i} never decided"),
            })
            .collect()
    }

    fn step(&self, state: &mut MisFromColoringState, heard_join: bool) -> Outbox<Joined> {
        if heard_join && state.decided.is_none() {
            state.decided = Some(false);
        }
        let out = if state.clock == state.color && state.decided.is_none() {
            state.decided = Some(true);
            Outbox::Broadcast(Joined)
        } else {
            Outbox::Silent
        };
        state.clock += 1;
        out
    }
}

impl LocalAlgorithm for MisFromColoring {
    type State = MisFromColoringState;
    type Message = Joined;

    fn init(&self, info: NodeInfo, _rng: &mut StdRng) -> (Self::State, Outbox<Joined>) {
        let mut state = MisFromColoringState {
            color: self.input[info.node.index()].raw(),
            clock: 0,
            decided: None,
        };
        let out = self.step(&mut state, false);
        (state, out)
    }

    fn round(
        &self,
        _info: NodeInfo,
        state: &mut Self::State,
        inbox: &[Incoming<Joined>],
        _rng: &mut StdRng,
    ) -> Outbox<Joined> {
        self.step(state, !inbox.is_empty())
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        // A node may halt as soon as it decided AND its announcement has
        // been handed to the engine (clock advanced past its color).
        state.decided.is_some() && state.clock > state.color || state.decided == Some(false)
    }
}

/// Reduces a proper `c`-coloring to a `(Δ+1)`-coloring, one top color
/// class per round.
///
/// Round `r` recolors the class with color `c - 1 - r` (if that color is
/// `≥ Δ+1`) to the smallest color in `{0..Δ}` unused by its neighbors
/// — color classes are independent, so simultaneous recoloring is safe.
/// Every node broadcasts its current color every round so the scheduled
/// class always has a fresh view.
#[derive(Debug, Clone)]
pub struct ColorReduction {
    input: Vec<Color>,
    target_colors: usize,
    schedule: usize,
}

/// Per-node state of [`ColorReduction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorReductionState {
    /// Current color.
    color: u32,
    /// Rounds executed.
    clock: u32,
    /// Latest colors heard per port.
    neighbor_colors: Vec<u32>,
}

impl ColorReduction {
    /// Creates the reduction for `input` (a proper coloring) targeting
    /// `Δ + 1` colors, where `Δ` is the maximum degree of the network
    /// the algorithm will run on.
    ///
    /// # Panics
    ///
    /// Panics if `target_colors == 0`.
    pub fn new(input: Vec<Color>, target_colors: usize) -> Self {
        assert!(target_colors > 0, "target palette must be non-empty");
        let c = input.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        let schedule = c.saturating_sub(target_colors);
        ColorReduction { input, target_colors, schedule }
    }

    /// Number of recoloring rounds the schedule needs.
    pub fn schedule_length(&self) -> usize {
        self.schedule
    }

    /// Extracts the final colors.
    pub fn colors(states: &[ColorReductionState]) -> Vec<Color> {
        states.iter().map(|s| Color::from(s.color)).collect()
    }
}

impl LocalAlgorithm for ColorReduction {
    type State = ColorReductionState;
    type Message = u32;

    fn init(&self, info: NodeInfo, _rng: &mut StdRng) -> (Self::State, Outbox<u32>) {
        let color = self.input[info.node.index()].raw();
        let state =
            ColorReductionState { color, clock: 0, neighbor_colors: vec![u32::MAX; info.degree] };
        if self.schedule == 0 {
            (state, Outbox::Silent)
        } else {
            (state, Outbox::Broadcast(color))
        }
    }

    fn round(
        &self,
        info: NodeInfo,
        state: &mut Self::State,
        inbox: &[Incoming<u32>],
        _rng: &mut StdRng,
    ) -> Outbox<u32> {
        for m in inbox {
            state.neighbor_colors[m.port] = m.message;
        }
        // Round r (clock r) recolors class `top - r` where `top` is the
        // highest input color.
        let top = (self.input.iter().map(|c| c.raw() + 1).max().unwrap_or(0)) - 1;
        let scheduled = top - state.clock;
        if state.color == scheduled && state.color as usize >= self.target_colors {
            let free = (0..self.target_colors as u32)
                .find(|c| !state.neighbor_colors[..info.degree].contains(c))
                // pslocal: allow(panic-path, "pigeonhole: deg(v) neighbors cannot block all deg(v)+1 target colors")
                .expect("Δ+1 colors always leave one free");
            state.color = free;
        }
        state.clock += 1;
        if (state.clock as usize) < self.schedule {
            Outbox::Broadcast(state.color)
        } else {
            Outbox::Silent
        }
    }

    fn is_halted(&self, state: &Self::State) -> bool {
        state.clock as usize >= self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Network};
    use pslocal_graph::algo::{color_count, greedy_coloring_identity};
    use pslocal_graph::generators::classic::{cycle, grid, path};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn mis_from_coloring_on_cycle() {
        let g = cycle(11);
        let coloring = greedy_coloring_identity(&g);
        let algo = MisFromColoring::new(coloring);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).run(&algo).unwrap();
        let mis = MisFromColoring::members(&exec.states);
        assert!(net.graph().is_maximal_independent_set(&mis));
        assert!(exec.trace.rounds <= algo.schedule_length() + 1);
    }

    #[test]
    fn mis_from_coloring_is_deterministic() {
        let g = gnp(&mut rand::rngs::StdRng::seed_from_u64(3), 60, 0.1);
        let coloring = greedy_coloring_identity(&g);
        let net = Network::with_identity_ids(g);
        let algo = MisFromColoring::new(coloring);
        let a = Engine::new(&net).seed(1).run(&algo).unwrap();
        let b = Engine::new(&net).seed(99).run(&algo).unwrap();
        assert_eq!(MisFromColoring::members(&a.states), MisFromColoring::members(&b.states));
    }

    #[test]
    fn mis_round_complexity_equals_color_count() {
        let g = path(30);
        let coloring = greedy_coloring_identity(&g); // 2 colors
        let algo = MisFromColoring::new(coloring);
        assert_eq!(algo.schedule_length(), 2);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).run(&algo).unwrap();
        assert!(exec.trace.rounds <= 2);
    }

    #[test]
    fn color_reduction_reaches_delta_plus_one() {
        let g = grid(5, 6);
        let delta = g.max_degree();
        // Start from the wasteful coloring "color = node index".
        let wasteful: Vec<Color> = (0..g.node_count()).map(Color::new).collect();
        assert!(g.is_proper_coloring(&wasteful));
        let algo = ColorReduction::new(wasteful, delta + 1);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).max_rounds(algo.schedule_length() + 2).run(&algo).unwrap();
        let colors = ColorReduction::colors(&exec.states);
        assert!(net.graph().is_proper_coloring(&colors));
        assert!(color_count(&colors) <= delta + 1);
        assert_eq!(exec.trace.rounds, algo.schedule_length());
    }

    #[test]
    fn color_reduction_noop_when_already_small() {
        let g = cycle(8);
        let coloring = greedy_coloring_identity(&g); // 2 colors ≤ Δ+1 = 3
        let algo = ColorReduction::new(coloring.clone(), 3);
        assert_eq!(algo.schedule_length(), 0);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).run(&algo).unwrap();
        assert_eq!(exec.trace.rounds, 0);
        assert_eq!(ColorReduction::colors(&exec.states), coloring);
    }

    #[test]
    fn color_reduction_on_random_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let g = gnp(&mut rng, 50, 0.15);
        let delta = g.max_degree();
        let wasteful: Vec<Color> = (0..g.node_count()).map(Color::new).collect();
        let algo = ColorReduction::new(wasteful, delta + 1);
        let net = Network::with_identity_ids(g);
        let exec = Engine::new(&net).max_rounds(algo.schedule_length() + 2).run(&algo).unwrap();
        let colors = ColorReduction::colors(&exec.states);
        assert!(net.graph().is_proper_coloring(&colors));
        assert!(color_count(&colors) <= delta + 1);
    }
}
