//! Leader election and BFS-tree construction — the `O(D)`-round
//! backbone primitives of the LOCAL model.
//!
//! Every node floods the smallest identifier it has heard together with
//! its best-known hop distance to that identifier's owner; after
//! `diameter + 1` quiet rounds the unique minimum has won everywhere
//! and the distance labels form a BFS tree rooted at the leader (each
//! non-root adopts as parent the neighbor that first offered its final
//! distance). Termination is by a caller-supplied round budget, as is
//! standard for algorithms whose natural stopping time is `Θ(D)` and
//! unknown locally.

use crate::runtime::{Incoming, LocalAlgorithm, NodeInfo, Outbox};
use pslocal_graph::NodeId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Message: `(leader id, distance to leader)` as currently believed.
pub type BfsMessage = (u64, u32);

/// Per-node state of [`LeaderBfs`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfsState {
    /// Smallest identifier heard so far.
    pub leader: u64,
    /// Best known hop distance to that leader.
    pub distance: u32,
    /// The port towards the parent in the BFS tree (`None` at the
    /// root or before any offer arrived).
    pub parent_port: Option<usize>,
    /// Rounds remaining before halting.
    remaining: u32,
}

/// Leader election + BFS tree in `budget` rounds (use
/// `≥ diameter + 1`).
#[derive(Debug, Clone, Copy)]
pub struct LeaderBfs {
    /// Round budget; the result is correct whenever this is at least
    /// the graph's diameter plus one.
    pub budget: u32,
}

impl LeaderBfs {
    /// Creates the algorithm with the given round budget.
    pub fn new(budget: u32) -> Self {
        LeaderBfs { budget }
    }

    /// The elected leader (the globally smallest id), read from any
    /// state vector of a completed run on a connected graph.
    pub fn leader(states: &[BfsState]) -> u64 {
        // pslocal: allow(panic-path, "the runtime never constructs an empty network, so the state vector has at least one entry")
        states.iter().map(|s| s.leader).min().expect("non-empty network")
    }

    /// Extracts `(parent, distance)` per node; the root has parent
    /// `None`. Parents are resolved through the host network's ports.
    pub fn tree(net: &crate::Network, states: &[BfsState]) -> Vec<(Option<NodeId>, u32)> {
        states
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let v = NodeId::new(i);
                let parent = s.parent_port.map(|p| net.neighbor_at_port(v, p));
                (parent, s.distance)
            })
            .collect()
    }
}

impl LocalAlgorithm for LeaderBfs {
    type State = BfsState;
    type Message = BfsMessage;

    fn init(&self, info: NodeInfo, _rng: &mut StdRng) -> (BfsState, Outbox<BfsMessage>) {
        let state =
            BfsState { leader: info.id, distance: 0, parent_port: None, remaining: self.budget };
        (state, Outbox::Broadcast((info.id, 0)))
    }

    fn round(
        &self,
        _info: NodeInfo,
        state: &mut BfsState,
        inbox: &[Incoming<BfsMessage>],
        _rng: &mut StdRng,
    ) -> Outbox<BfsMessage> {
        let mut improved = false;
        for m in inbox {
            let (leader, dist) = m.message;
            let offered = (leader, dist.saturating_add(1));
            if offered < (state.leader, state.distance) {
                state.leader = offered.0;
                state.distance = offered.1;
                state.parent_port = Some(m.port);
                improved = true;
            }
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            Outbox::Silent
        } else if improved || state.remaining == self.budget - 1 {
            Outbox::Broadcast((state.leader, state.distance))
        } else {
            // Nothing new to report; stay quiet (messages are the
            // expensive resource worth saving even in LOCAL).
            Outbox::Silent
        }
    }

    fn is_halted(&self, state: &BfsState) -> bool {
        state.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Network};
    use pslocal_graph::algo::{bfs_distances, diameter};
    use pslocal_graph::generators::classic::{cycle, grid, path};
    use pslocal_graph::generators::random::{gnp, random_tree};
    use rand::SeedableRng;

    fn run(net: &Network, budget: u32) -> Vec<BfsState> {
        Engine::new(net)
            .max_rounds(budget as usize + 2)
            .run(&LeaderBfs::new(budget))
            .expect("fixed budget always halts")
            .states
    }

    fn check_connected(net: &Network) {
        let g = net.graph();
        let budget = diameter(g) + 2;
        let states = run(net, budget);
        // Leader: the minimum id, agreed by everyone.
        let min_id = g.nodes().map(|v| net.id_of(v)).min().unwrap();
        assert!(states.iter().all(|s| s.leader == min_id));
        // Distances: exact BFS distances from the leader's node.
        let root = g.nodes().find(|&v| net.id_of(v) == min_id).unwrap();
        let dist = bfs_distances(g, root);
        for v in g.nodes() {
            assert_eq!(states[v.index()].distance, dist[v.index()], "node {v}");
        }
        // Tree: parent is one hop closer; root has no parent.
        let tree = LeaderBfs::tree(net, &states);
        for v in g.nodes() {
            match tree[v.index()].0 {
                None => assert_eq!(v, root, "only the root lacks a parent"),
                Some(p) => {
                    assert!(g.has_edge(v, p));
                    assert_eq!(dist[p.index()] + 1, dist[v.index()]);
                }
            }
        }
    }

    #[test]
    fn elects_and_builds_tree_on_classic_families() {
        check_connected(&Network::with_identity_ids(path(12)));
        check_connected(&Network::with_identity_ids(cycle(15)));
        check_connected(&Network::with_identity_ids(grid(4, 6)));
        check_connected(&Network::with_scrambled_ids(grid(5, 5), 3));
    }

    #[test]
    fn elects_on_random_connected_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for seed in 0..3 {
            check_connected(&Network::with_scrambled_ids(random_tree(&mut rng, 40), seed));
        }
    }

    #[test]
    fn short_budget_leaves_far_nodes_uninformed() {
        // Locality made visible: with budget b, node at distance > b
        // from the minimum cannot know it.
        let net = Network::with_identity_ids(path(12));
        let states = run(&net, 3);
        assert_eq!(states[2].leader, 0);
        assert_ne!(states[11].leader, 0, "node 11 is 11 hops from id 0");
    }

    #[test]
    fn disconnected_graphs_elect_per_component() {
        let g = pslocal_graph::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let net = Network::with_identity_ids(g);
        let states = run(&net, 5);
        assert!(states[..3].iter().all(|s| s.leader == 0));
        assert!(states[3..].iter().all(|s| s.leader == 3));
    }

    #[test]
    fn message_suppression_still_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = gnp(&mut rng, 50, 0.1);
        if pslocal_graph::algo::is_connected(&g) {
            check_connected(&Network::with_scrambled_ids(g, 11));
        }
    }
}
