//! # pslocal-local
//!
//! A synchronous simulator of the **LOCAL model** of distributed
//! computing \[Lin92\], the ambient machine model of *"P-SLOCAL-
//! Completeness of Maximum Independent Set Approximation"* (Maus,
//! PODC 2019).
//!
//! In the LOCAL model the input graph is the communication network:
//! per round, each node sends one unbounded message to each neighbor,
//! receives its neighbors' messages, and updates its state. The only
//! complexity measure is the number of rounds, so after `r` rounds a
//! node's output is a function of its `r`-hop neighborhood — *locality*
//! in the sense the paper builds on.
//!
//! * [`Network`] — graph + unique identifiers + ports.
//! * [`Engine`] — the round executor with message/round accounting; it
//!   structurally enforces the model (a node sees only its inbox).
//! * [`algorithms`] — Luby's MIS, random-trial `(Δ+1)`-coloring,
//!   MIS-from-coloring, color reduction, and Cole–Vishkin ring
//!   3-coloring.
//!
//! # Examples
//!
//! ```
//! use pslocal_graph::generators::classic::cycle;
//! use pslocal_local::{algorithms::LubyMis, Engine, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::with_identity_ids(cycle(20));
//! let exec = Engine::new(&net).seed(42).run(&LubyMis)?;
//! let mis = LubyMis::members(&exec.states);
//! assert!(net.graph().is_maximal_independent_set(&mis));
//! println!("MIS of size {} in {} rounds", mis.len(), exec.trace.rounds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod network;
pub mod runtime;

pub use network::Network;
pub use runtime::{
    Engine, Execution, ExecutionTrace, Incoming, LocalAlgorithm, NodeInfo, Outbox,
    RoundLimitExceeded,
};
