//! Unique-maximum colorings — the classical strengthening of
//! conflict-free coloring.
//!
//! A single-coloring is **unique-maximum (UM)** for a hypergraph when
//! in every hyperedge the *largest* color present occurs exactly once.
//! Every UM coloring is conflict-free (the max color is a witness), and
//! the classic interval colorings — including the dyadic ruler coloring
//! in [`interval`](crate::interval) — are UM. The distinction matters
//! for lower bounds (\[DN18\] treats both notions); this module provides
//! the checker and a sequential UM heuristic so experiments can compare
//! budgets across the two notions.

use crate::multicoloring::Multicoloring;
use pslocal_graph::{Color, HyperedgeId, Hypergraph, NodeId};

/// Whether `coloring` (a total single-coloring, one color per vertex)
/// is unique-maximum for `h`.
///
/// # Panics
///
/// Panics if `coloring.len()` differs from the vertex count.
pub fn is_unique_maximum_coloring(h: &Hypergraph, coloring: &[Color]) -> bool {
    assert_eq!(coloring.len(), h.node_count(), "coloring length mismatch");
    h.edge_ids().all(|e| unique_max_witness(h, coloring, e).is_some())
}

/// The vertex carrying the unique maximum color of edge `e`, if the
/// maximum is unique.
pub fn unique_max_witness(h: &Hypergraph, coloring: &[Color], e: HyperedgeId) -> Option<NodeId> {
    let members = h.edge(e);
    let max = members.iter().map(|&v| coloring[v.index()]).max()?;
    let mut carriers = members.iter().filter(|&&v| coloring[v.index()] == max);
    let first = carriers.next()?;
    carriers.next().is_none().then_some(*first)
}

/// Outcome of [`greedy_unique_maximum`].
#[derive(Debug, Clone)]
pub struct UniqueMaxOutcome {
    /// The UM coloring (total, one color per vertex).
    pub coloring: Vec<Color>,
    /// Colors used.
    pub colors_used: usize,
}

/// Sequential unique-maximum coloring by *peeling*: level 0 takes a
/// maximal set of vertices such that no hyperedge contains two of them
/// (one witness candidate per edge at most)… proceeding upward would
/// need care; instead this heuristic colors by **reverse peeling**:
/// repeatedly pick a maximal "primal-independent" set among remaining
/// vertices, give it the *current lowest* level, remove it, and
/// continue — then every edge's maximum level is carried by the last
/// level intersecting it, which by primal-independence it meets in at
/// most one vertex... but it may meet it in zero. To guarantee
/// correctness the construction instead assigns levels top-down:
/// level `L` (highest) = maximal primal-independent set `S_L`; every
/// edge meeting `S_L` has a unique maximum; edges not meeting it are
/// handled recursively in `H` minus `S_L` (restricting edges), with all
/// remaining vertices capped below `L`. Every recursion level colors a
/// maximal independent set of the residual primal graph, so at most
/// `m` levels are needed and each edge is eventually hit.
pub fn greedy_unique_maximum(h: &Hypergraph) -> UniqueMaxOutcome {
    let n = h.node_count();
    const UNSET: u32 = u32::MAX;
    let mut level = vec![UNSET; n];
    // Active edges: not yet guaranteed a unique maximum.
    let mut active: Vec<HyperedgeId> = h.edge_ids().collect();
    let mut rounds = Vec::new(); // sets chosen per iteration, top level first

    while !active.is_empty() {
        // Maximal set of unset vertices, pairwise not co-occurring in
        // an active edge, chosen so every active edge containing an
        // unset vertex gets at most one.
        let mut blocked = vec![false; n];
        let mut chosen: Vec<NodeId> = Vec::new();
        for &e in &active {
            if h.edge(e).iter().any(|v| chosen.contains(v)) {
                continue;
            }
            if let Some(&w) =
                h.edge(e).iter().find(|&&v| level[v.index()] == UNSET && !blocked[v.index()])
            {
                chosen.push(w);
                for &f in h.edges_of(w) {
                    for &u in h.edge(f) {
                        blocked[u.index()] = true;
                    }
                }
            }
        }
        debug_assert!(!chosen.is_empty(), "every active edge has unset vertices");
        for &v in &chosen {
            level[v.index()] = rounds.len() as u32; // provisional, remapped below
        }
        // An active edge is settled once it contains a chosen vertex:
        // that vertex will carry a strictly higher final level than
        // everything else in the edge (levels decrease in later
        // iterations) and is unique in the edge by construction.
        active.retain(|&e| !h.edge(e).iter().any(|&v| chosen.contains(&v)));
        rounds.push(chosen);
    }

    // Remap: iteration 0 is the TOP level. Unset vertices (in no edge)
    // get level 0.
    let top = rounds.len() as u32;
    let coloring: Vec<Color> = level
        .iter()
        .map(|&l| if l == UNSET { Color::new(0) } else { Color::new((top - l) as usize) })
        .collect();
    let mut used: Vec<Color> = coloring.clone();
    used.sort_unstable();
    used.dedup();
    UniqueMaxOutcome { coloring, colors_used: used.len() }
}

/// Converts a UM coloring into a [`Multicoloring`] for the shared
/// checkers.
pub fn as_multicoloring(coloring: &[Color]) -> Multicoloring {
    Multicoloring::from_single(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_conflict_free;
    use crate::interval::dyadic_cf_coloring;
    use pslocal_graph::generators::hyper::{interval_hypergraph, random_uniform_hypergraph};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn um_witness_detection() {
        let h = Hypergraph::from_edges(3, [vec![0, 1, 2]]).unwrap();
        let um = vec![Color::new(0), Color::new(1), Color::new(2)];
        assert_eq!(unique_max_witness(&h, &um, HyperedgeId::new(0)), Some(NodeId::new(2)));
        assert!(is_unique_maximum_coloring(&h, &um));
        let tie = vec![Color::new(0), Color::new(2), Color::new(2)];
        assert_eq!(unique_max_witness(&h, &tie, HyperedgeId::new(0)), None);
        assert!(!is_unique_maximum_coloring(&h, &tie));
    }

    #[test]
    fn um_implies_conflict_free() {
        let mut r = rng(1);
        for seed in 0..4 {
            let _ = seed;
            let h = random_uniform_hypergraph(&mut r, 24, 14, 4);
            let out = greedy_unique_maximum(&h);
            assert!(is_unique_maximum_coloring(&h, &out.coloring), "greedy UM output must be UM");
            assert!(is_conflict_free(&h, &as_multicoloring(&out.coloring)));
        }
    }

    #[test]
    fn dyadic_coloring_is_unique_maximum_on_intervals() {
        let mut r = rng(2);
        let (h, _) = interval_hypergraph(&mut r, 64, 30, 2, 16);
        let dyadic = dyadic_cf_coloring(64);
        let single: Vec<Color> = (0..64).map(|p| dyadic.colors_of(NodeId::new(p))[0]).collect();
        assert!(is_unique_maximum_coloring(&h, &single));
    }

    #[test]
    fn um_greedy_color_budget_is_bounded_by_edges_plus_one() {
        let mut r = rng(3);
        let h = random_uniform_hypergraph(&mut r, 30, 12, 3);
        let out = greedy_unique_maximum(&h);
        assert!(out.colors_used <= h.edge_count() + 1);
    }

    #[test]
    fn edgeless_hypergraph_uses_one_color() {
        let h = Hypergraph::from_edges(4, Vec::<Vec<usize>>::new()).unwrap();
        let out = greedy_unique_maximum(&h);
        assert_eq!(out.colors_used, 1);
        assert!(is_unique_maximum_coloring(&h, &out.coloring));
    }

    #[test]
    fn disjoint_edges_need_two_levels_at_most() {
        let h = Hypergraph::from_edges(6, [vec![0, 1], vec![2, 3], vec![4, 5]]).unwrap();
        let out = greedy_unique_maximum(&h);
        assert!(is_unique_maximum_coloring(&h, &out.coloring));
        assert!(out.colors_used <= 2);
    }
}
