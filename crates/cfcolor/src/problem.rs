//! The conflict-free multicoloring *problem*, with verifier and color
//! budget — the source problem of the Theorem 1.1 reduction
//! (P-SLOCAL-complete by the paper's Theorem 1.2).

use crate::checker;
use crate::multicoloring::Multicoloring;
use pslocal_graph::Hypergraph;
use std::error::Error;
use std::fmt;

/// The conflict-free multicoloring problem on almost-uniform
/// hypergraphs, parameterized by the paper's constraints.
#[derive(Debug, Clone, Copy)]
pub struct CfMulticoloringProblem {
    /// Maximum number of distinct colors allowed (`poly log n` in
    /// Theorem 1.2; the reduction achieves `k · ρ`).
    pub max_colors: usize,
    /// Almost-uniformity slack ε the instance must satisfy.
    pub epsilon: f64,
}

/// Verification failure for [`CfMulticoloringProblem`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CfViolation {
    /// The instance is not almost uniform for the required ε.
    NotAlmostUniform {
        /// The underlying description.
        detail: String,
    },
    /// Some edge has no uniquely colored vertex.
    UnhappyEdge {
        /// The first unhappy edge.
        edge: pslocal_graph::HyperedgeId,
    },
    /// The coloring uses more colors than allowed.
    TooManyColors {
        /// Colors used.
        used: usize,
        /// Colors allowed.
        allowed: usize,
    },
    /// The coloring's vertex count does not match the hypergraph.
    SizeMismatch {
        /// Vertices in the hypergraph.
        expected: usize,
        /// Vertices in the coloring.
        found: usize,
    },
}

impl fmt::Display for CfViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfViolation::NotAlmostUniform { detail } => {
                write!(f, "instance not almost uniform: {detail}")
            }
            CfViolation::UnhappyEdge { edge } => {
                write!(f, "edge {edge} has no uniquely colored vertex")
            }
            CfViolation::TooManyColors { used, allowed } => {
                write!(f, "{used} colors used, only {allowed} allowed")
            }
            CfViolation::SizeMismatch { expected, found } => {
                write!(f, "coloring covers {found} vertices, hypergraph has {expected}")
            }
        }
    }
}

impl Error for CfViolation {}

impl CfMulticoloringProblem {
    /// A problem instance with the paper's default ε = 0.5 and the
    /// given color budget.
    pub fn with_budget(max_colors: usize) -> Self {
        CfMulticoloringProblem { max_colors, epsilon: 0.5 }
    }

    /// Verifies `coloring` as a solution for `instance`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CfViolation`] found: instance admissibility
    /// (almost uniformity), coloring size, conflict-freeness, and the
    /// color budget, in that order.
    pub fn verify(
        &self,
        instance: &Hypergraph,
        coloring: &Multicoloring,
    ) -> Result<(), CfViolation> {
        instance
            .require_almost_uniform(self.epsilon)
            .map_err(|e| CfViolation::NotAlmostUniform { detail: e.to_string() })?;
        if coloring.node_count() != instance.node_count() {
            return Err(CfViolation::SizeMismatch {
                expected: instance.node_count(),
                found: coloring.node_count(),
            });
        }
        if let Some(&edge) = checker::unhappy_edges(instance, coloring).first() {
            return Err(CfViolation::UnhappyEdge { edge });
        }
        let used = coloring.total_color_count();
        if used > self.max_colors {
            return Err(CfViolation::TooManyColors { used, allowed: self.max_colors });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::{Color, NodeId};

    fn h() -> Hypergraph {
        Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]]).unwrap()
    }

    #[test]
    fn accepts_valid_solutions() {
        let problem = CfMulticoloringProblem::with_budget(3);
        let mc = Multicoloring::from_single(&[
            Color::new(0),
            Color::new(1),
            Color::new(2),
            Color::new(0),
        ]);
        assert!(problem.verify(&h(), &mc).is_ok());
    }

    #[test]
    fn rejects_unhappy_edges() {
        let problem = CfMulticoloringProblem::with_budget(5);
        let mc = Multicoloring::from_single(&[
            Color::new(0),
            Color::new(1),
            Color::new(1),
            Color::new(1),
        ]);
        // Edge 1 = {1,2,3} all color 1.
        let err = problem.verify(&h(), &mc).unwrap_err();
        assert!(matches!(err, CfViolation::UnhappyEdge { .. }));
        assert!(err.to_string().contains("no uniquely colored"));
    }

    #[test]
    fn rejects_budget_overruns() {
        let problem = CfMulticoloringProblem::with_budget(2);
        let mc = Multicoloring::from_single(&[
            Color::new(0),
            Color::new(1),
            Color::new(2),
            Color::new(0),
        ]);
        let err = problem.verify(&h(), &mc).unwrap_err();
        assert!(matches!(err, CfViolation::TooManyColors { used: 3, allowed: 2 }));
    }

    #[test]
    fn rejects_size_mismatch() {
        let problem = CfMulticoloringProblem::with_budget(9);
        let mc = Multicoloring::new(2);
        let err = problem.verify(&h(), &mc).unwrap_err();
        assert!(matches!(err, CfViolation::SizeMismatch { expected: 4, found: 2 }));
    }

    #[test]
    fn rejects_non_uniform_instances() {
        let h = Hypergraph::from_edges(8, [vec![0, 1], vec![2, 3, 4, 5, 6, 7]]).unwrap();
        let problem = CfMulticoloringProblem { max_colors: 10, epsilon: 0.5 };
        let mut mc = Multicoloring::new(8);
        mc.add_color(NodeId::new(0), Color::new(0));
        mc.add_color(NodeId::new(2), Color::new(0));
        let err = problem.verify(&h, &mc).unwrap_err();
        assert!(matches!(err, CfViolation::NotAlmostUniform { .. }));
    }
}
