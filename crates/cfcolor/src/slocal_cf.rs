//! Conflict-free coloring as an SLOCAL algorithm.
//!
//! Theorem 1.2 places conflict-free multicoloring in P-SLOCAL; the
//! *containment* side of that statement has an elementary witness: a
//! proper coloring of the primal graph of `H` is conflict-free (every
//! vertex of every edge is uniquely colored), and proper coloring is
//! SLOCAL with locality 1. This module runs the locality-1 greedy on
//! the primal graph and returns the CF coloring with its SLOCAL trace —
//! the simple-but-wasteful upper bound (`Δ_primal + 1` colors, far from
//! the `poly log n` of Theorem 1.2 in general, tight on low-degree
//! instances) that the reduction experiments compare against.

use crate::multicoloring::Multicoloring;
use pslocal_graph::Hypergraph;
use pslocal_slocal::{algorithms::GreedyColoring, orders, run, SlocalTrace};

/// Outcome of the SLOCAL conflict-free coloring.
#[derive(Debug, Clone)]
pub struct SlocalCfOutcome {
    /// The conflict-free (single-)coloring.
    pub coloring: Multicoloring,
    /// The SLOCAL execution trace on the primal graph (locality 1).
    pub trace: SlocalTrace,
    /// Colors used.
    pub colors_used: usize,
}

/// Computes a conflict-free coloring of `h` by running the locality-1
/// SLOCAL greedy coloring on the primal graph, processing vertices in
/// identity order.
///
/// # Examples
///
/// ```
/// use pslocal_cfcolor::slocal_cf::slocal_cf_coloring;
/// use pslocal_cfcolor::checker::is_conflict_free;
/// use pslocal_graph::Hypergraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]])?;
/// let out = slocal_cf_coloring(&h);
/// assert!(is_conflict_free(&h, &out.coloring));
/// assert_eq!(out.trace.realized_locality, 1);
/// # Ok(())
/// # }
/// ```
pub fn slocal_cf_coloring(h: &Hypergraph) -> SlocalCfOutcome {
    let primal = h.primal_graph();
    let outcome = run(&primal, &GreedyColoring, &orders::identity(primal.node_count()));
    let colors = GreedyColoring::colors(&outcome.states);
    let coloring = Multicoloring::from_single(&colors);
    let colors_used = coloring.total_color_count();
    SlocalCfOutcome { coloring, trace: outcome.trace, colors_used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_conflict_free;
    use pslocal_graph::generators::hyper::{
        planted_cf_instance, random_uniform_hypergraph, PlantedCfParams,
    };
    use rand::SeedableRng;

    #[test]
    fn slocal_cf_is_conflict_free_with_locality_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for seed in 0..4 {
            let _ = seed;
            let h = random_uniform_hypergraph(&mut rng, 40, 20, 4);
            let out = slocal_cf_coloring(&h);
            assert!(is_conflict_free(&h, &out.coloring));
            assert_eq!(out.trace.declared_locality, 1);
            assert_eq!(out.trace.realized_locality, 1);
        }
    }

    #[test]
    fn color_budget_is_primal_degree_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(50, 25, 4));
        let h = &inst.hypergraph;
        let out = slocal_cf_coloring(h);
        assert!(is_conflict_free(h, &out.coloring));
        let delta = h.primal_graph().max_degree();
        assert!(out.colors_used <= delta + 1, "{} > Δ+1 = {}", out.colors_used, delta + 1);
    }

    #[test]
    fn edgeless_instance_uses_one_color() {
        let h = Hypergraph::from_edges(3, Vec::<Vec<usize>>::new()).unwrap();
        let out = slocal_cf_coloring(&h);
        assert_eq!(out.colors_used, 1);
        assert!(is_conflict_free(&h, &out.coloring));
    }
}
