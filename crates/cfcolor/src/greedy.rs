//! Direct (reduction-free) conflict-free coloring baselines.
//!
//! The Theorem 1.1 reduction solves conflict-free multicoloring through
//! a MaxIS oracle; these baselines solve it directly, giving the
//! experiment suite independent ground truth to compare colors and
//! phases against:
//!
//! * [`cf_via_primal_coloring`] — properly color the primal graph; in a
//!   proper primal coloring *every* member of an edge is uniquely
//!   colored, so the coloring is trivially conflict-free. Uses at most
//!   `Δ_primal + 1` colors — cheap but wasteful.
//! * [`greedy_cf_multicoloring`] — phase-based: per phase, pick a
//!   maximal primal-independent set of witnesses among vertices of
//!   still-unhappy edges, give them a fresh color (each edge then holds
//!   at most one of them, so every covered edge becomes happy), repeat.
//!   Every phase makes at least one edge happy, so at most `m` phases;
//!   in practice the count is close to the paper's `ρ` bounds.

use crate::checker;
use crate::multicoloring::Multicoloring;
use pslocal_graph::algo::degeneracy_coloring;
use pslocal_graph::{Color, HyperedgeId, Hypergraph, NodeId};

/// Conflict-free single-coloring via a proper coloring of the primal
/// graph.
///
/// Returns the multicoloring (single color per vertex) — conflict-free
/// by construction whenever every edge has ≥ 1 member, which
/// [`Hypergraph`] guarantees.
pub fn cf_via_primal_coloring(h: &Hypergraph) -> Multicoloring {
    let primal = h.primal_graph();
    let colors = degeneracy_coloring(&primal);
    Multicoloring::from_single(&colors)
}

/// Outcome of [`greedy_cf_multicoloring`].
#[derive(Debug, Clone)]
pub struct GreedyCfOutcome {
    /// The conflict-free multicoloring produced.
    pub coloring: Multicoloring,
    /// Number of phases (= colors) used.
    pub phases: usize,
    /// Edges still unhappy after each phase (strictly decreasing).
    pub unhappy_after_phase: Vec<usize>,
}

/// Phase-greedy conflict-free multicoloring (see module docs).
///
/// Each phase uses one fresh color, so the total color count equals the
/// phase count.
pub fn greedy_cf_multicoloring(h: &Hypergraph) -> GreedyCfOutcome {
    let n = h.node_count();
    let mut coloring = Multicoloring::new(n);
    let mut unhappy: Vec<HyperedgeId> = h.edge_ids().collect();
    let mut phases = 0usize;
    let mut unhappy_after_phase = Vec::new();

    while !unhappy.is_empty() {
        let fresh = Color::new(phases);
        // Vertices incident to unhappy edges, and a per-vertex list of
        // which unhappy edges contain them.
        let mut blocked = vec![false; n];
        let mut chosen: Vec<NodeId> = Vec::new();
        // Greedy maximal "primal-independent within unhappy edges":
        // scan unhappy edges; for each, try to add a witness that does
        // not co-occur (in an unhappy edge) with an already-chosen one.
        for &e in &unhappy {
            if h.edge(e).iter().any(|&v| chosen_contains(&chosen, v)) {
                continue; // already has a (unique) witness
            }
            if let Some(&w) = h.edge(e).iter().find(|&&v| !blocked[v.index()]) {
                chosen.push(w);
                // Block every vertex sharing an unhappy edge with w.
                for &f in h.edges_of(w) {
                    for &u in h.edge(f) {
                        blocked[u.index()] = true;
                    }
                }
            }
        }
        debug_assert!(!chosen.is_empty(), "a maximal scan always finds a witness");
        for &w in &chosen {
            coloring.add_color(w, fresh);
        }
        phases += 1;
        unhappy.retain(|&e| !checker::is_edge_happy(h, &coloring, e));
        unhappy_after_phase.push(unhappy.len());
        assert!(phases <= h.edge_count().max(1), "greedy CF must terminate within m phases");
    }

    GreedyCfOutcome { coloring, phases, unhappy_after_phase }
}

fn chosen_contains(chosen: &[NodeId], v: NodeId) -> bool {
    chosen.contains(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_conflict_free;
    use pslocal_graph::generators::hyper::{
        planted_cf_instance, random_uniform_hypergraph, PlantedCfParams,
    };
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn primal_coloring_is_conflict_free() {
        let h = random_uniform_hypergraph(&mut rng(1), 30, 20, 4);
        let mc = cf_via_primal_coloring(&h);
        assert!(is_conflict_free(&h, &mc));
        assert!(mc.is_single());
    }

    #[test]
    fn primal_coloring_on_planted_instances() {
        for seed in 0..3 {
            let inst = planted_cf_instance(&mut rng(seed), PlantedCfParams::new(50, 30, 4));
            let mc = cf_via_primal_coloring(&inst.hypergraph);
            assert!(is_conflict_free(&inst.hypergraph, &mc));
        }
    }

    #[test]
    fn greedy_cf_is_conflict_free_and_bounded() {
        for seed in 0..4 {
            let h = random_uniform_hypergraph(&mut rng(seed), 40, 25, 5);
            let outcome = greedy_cf_multicoloring(&h);
            assert!(is_conflict_free(&h, &outcome.coloring));
            assert_eq!(outcome.coloring.total_color_count(), outcome.phases);
            assert!(outcome.phases <= h.edge_count());
            // Unhappy counts strictly decrease.
            let mut prev = h.edge_count() + 1;
            for &u in &outcome.unhappy_after_phase {
                assert!(u < prev);
                prev = u;
            }
            assert_eq!(*outcome.unhappy_after_phase.last().unwrap(), 0);
        }
    }

    #[test]
    fn greedy_cf_on_edgeless_hypergraph() {
        let h = pslocal_graph::Hypergraph::from_edges(5, Vec::<Vec<usize>>::new()).unwrap();
        let outcome = greedy_cf_multicoloring(&h);
        assert_eq!(outcome.phases, 0);
        assert!(is_conflict_free(&h, &outcome.coloring));
    }

    #[test]
    fn greedy_cf_on_disjoint_edges_uses_one_phase() {
        let h =
            pslocal_graph::Hypergraph::from_edges(6, [vec![0, 1], vec![2, 3], vec![4, 5]]).unwrap();
        let outcome = greedy_cf_multicoloring(&h);
        assert_eq!(outcome.phases, 1);
        assert!(is_conflict_free(&h, &outcome.coloring));
    }

    #[test]
    fn greedy_cf_on_sunflower_needs_few_phases() {
        // Edges all sharing vertex 0: {0,i} for i = 1..6. Coloring 0
        // uniquely makes all happy in one phase.
        let h = pslocal_graph::Hypergraph::from_edges(
            7,
            (1..7).map(|i| vec![0usize, i]).collect::<Vec<_>>(),
        )
        .unwrap();
        let outcome = greedy_cf_multicoloring(&h);
        assert!(is_conflict_free(&h, &outcome.coloring));
        assert!(outcome.phases <= 2, "phases = {}", outcome.phases);
    }
}
