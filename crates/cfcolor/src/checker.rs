//! Happy-edge computation and conflict-freeness verification.
//!
//! The paper's vocabulary: an edge is **happy** in a coloring if it
//! contains a vertex with a color unique within the edge ("there is no
//! u ≠ v with u ∈ e and f(u) = f(v)"). The hardness proof works phase
//! by phase, removing happy edges; these checkers are used after every
//! phase and as the final verification of Theorem 1.1's output.

use crate::multicoloring::Multicoloring;
use pslocal_graph::{Color, HyperedgeId, Hypergraph};
use std::collections::HashMap;

/// Whether hyperedge `e` is happy under `coloring`: some member vertex
/// holds a color that no other member holds (in any of its colors).
///
/// # Panics
///
/// Panics if the multicoloring's vertex count differs from the
/// hypergraph's, or `e` is out of range.
pub fn is_edge_happy(h: &Hypergraph, coloring: &Multicoloring, e: HyperedgeId) -> bool {
    assert_eq!(coloring.node_count(), h.node_count(), "coloring size mismatch");
    happy_witness(h, coloring, e).is_some()
}

/// The witness making `e` happy, if any: a `(vertex, color)` pair where
/// the vertex is the only member of `e` holding that color.
pub fn happy_witness(
    h: &Hypergraph,
    coloring: &Multicoloring,
    e: HyperedgeId,
) -> Option<(pslocal_graph::NodeId, Color)> {
    let members = h.edge(e);
    // Count color multiplicities across the edge.
    let mut multiplicity: HashMap<Color, u32> = HashMap::new();
    for &v in members {
        for &c in coloring.colors_of(v) {
            *multiplicity.entry(c).or_insert(0) += 1;
        }
    }
    for &v in members {
        for &c in coloring.colors_of(v) {
            if multiplicity[&c] == 1 {
                return Some((v, c));
            }
        }
    }
    None
}

/// All happy edges under `coloring`, in id order.
pub fn happy_edges(h: &Hypergraph, coloring: &Multicoloring) -> Vec<HyperedgeId> {
    h.edge_ids().filter(|&e| is_edge_happy(h, coloring, e)).collect()
}

/// All unhappy edges under `coloring`, in id order.
pub fn unhappy_edges(h: &Hypergraph, coloring: &Multicoloring) -> Vec<HyperedgeId> {
    h.edge_ids().filter(|&e| !is_edge_happy(h, coloring, e)).collect()
}

/// Number of happy edges.
pub fn happy_count(h: &Hypergraph, coloring: &Multicoloring) -> usize {
    h.edge_ids().filter(|&e| is_edge_happy(h, coloring, e)).count()
}

/// Whether `coloring` is a conflict-free multicoloring of `h` (every
/// edge happy).
pub fn is_conflict_free(h: &Hypergraph, coloring: &Multicoloring) -> bool {
    h.edge_ids().all(|e| is_edge_happy(h, coloring, e))
}

/// Verification report for a claimed conflict-free multicoloring, the
/// record EXPERIMENTS.md rows are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfReport {
    /// Total edges checked.
    pub edges: usize,
    /// How many were happy.
    pub happy: usize,
    /// Total distinct colors used.
    pub colors_used: usize,
    /// Largest per-vertex color multiplicity.
    pub max_colors_per_vertex: usize,
}

impl CfReport {
    /// Builds the report for `coloring` on `h`.
    pub fn of(h: &Hypergraph, coloring: &Multicoloring) -> Self {
        CfReport {
            edges: h.edge_count(),
            happy: happy_count(h, coloring),
            colors_used: coloring.total_color_count(),
            max_colors_per_vertex: coloring.max_colors_per_vertex(),
        }
    }

    /// Whether the coloring was conflict-free.
    pub fn is_conflict_free(&self) -> bool {
        self.happy == self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::{Hypergraph, NodeId};

    fn h() -> Hypergraph {
        Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]]).unwrap()
    }

    fn single(colors: &[u32]) -> Multicoloring {
        Multicoloring::from_single(
            &colors.iter().map(|&c| Color::new(c as usize)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn unique_color_makes_edge_happy() {
        let h = h();
        // Edge 0 = {0,1,2}: vertex 0 has unique color 0.
        let mc = single(&[0, 1, 1, 1]);
        assert!(is_edge_happy(&h, &mc, HyperedgeId::new(0)));
        let (w, c) = happy_witness(&h, &mc, HyperedgeId::new(0)).unwrap();
        assert_eq!((w, c), (NodeId::new(0), Color::new(0)));
        // Edge 1 = {1,2,3}: all share color 1 → unhappy.
        assert!(!is_edge_happy(&h, &mc, HyperedgeId::new(1)));
        assert_eq!(happy_edges(&h, &mc), vec![HyperedgeId::new(0)]);
        assert_eq!(unhappy_edges(&h, &mc), vec![HyperedgeId::new(1)]);
        assert_eq!(happy_count(&h, &mc), 1);
        assert!(!is_conflict_free(&h, &mc));
    }

    #[test]
    fn proper_like_coloring_is_conflict_free() {
        let h = h();
        let mc = single(&[0, 1, 2, 0]);
        assert!(is_conflict_free(&h, &mc));
        let report = CfReport::of(&h, &mc);
        assert!(report.is_conflict_free());
        assert_eq!(report.colors_used, 3);
        assert_eq!(report.max_colors_per_vertex, 1);
    }

    #[test]
    fn uncolored_vertices_contribute_nothing() {
        let h = h();
        let mut mc = Multicoloring::new(4);
        // Only vertex 3 colored: edge 1 happy, edge 0 not.
        mc.add_color(NodeId::new(3), Color::new(7));
        assert!(!is_edge_happy(&h, &mc, HyperedgeId::new(0)));
        assert!(is_edge_happy(&h, &mc, HyperedgeId::new(1)));
    }

    #[test]
    fn multicolor_can_create_uniqueness() {
        let h = Hypergraph::from_edges(3, [vec![0, 1, 2]]).unwrap();
        let mut mc = Multicoloring::new(3);
        // All three share color 0; vertex 2 additionally holds color 1.
        for i in 0..3 {
            mc.add_color(NodeId::new(i), Color::new(0));
        }
        assert!(!is_conflict_free(&h, &mc));
        mc.add_color(NodeId::new(2), Color::new(1));
        assert!(is_conflict_free(&h, &mc));
        let (w, c) = happy_witness(&h, &mc, HyperedgeId::new(0)).unwrap();
        assert_eq!((w, c), (NodeId::new(2), Color::new(1)));
    }

    #[test]
    fn multicolor_duplication_can_destroy_uniqueness() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]).unwrap();
        let mut mc = Multicoloring::new(2);
        mc.add_color(NodeId::new(0), Color::new(0));
        assert!(is_conflict_free(&h, &mc));
        // The other vertex acquiring the same color kills the witness.
        mc.add_color(NodeId::new(1), Color::new(0));
        assert!(!is_conflict_free(&h, &mc));
    }

    #[test]
    fn singleton_edges_are_happy_once_colored() {
        let h = Hypergraph::from_edges(2, [vec![0]]).unwrap();
        let mut mc = Multicoloring::new(2);
        assert!(!is_edge_happy(&h, &mc, HyperedgeId::new(0)));
        mc.add_color(NodeId::new(0), Color::new(0));
        assert!(is_edge_happy(&h, &mc, HyperedgeId::new(0)));
    }

    #[test]
    fn edgeless_hypergraph_is_vacuously_conflict_free() {
        let h = Hypergraph::from_edges(3, Vec::<Vec<usize>>::new()).unwrap();
        let mc = Multicoloring::new(3);
        assert!(is_conflict_free(&h, &mc));
        assert!(CfReport::of(&h, &mc).is_conflict_free());
    }
}
