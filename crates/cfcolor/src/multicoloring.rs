//! Conflict-free multicolorings: the assignment objects of the paper's
//! source problem.
//!
//! In conflict-free *k-coloring*, `f : V → {1..k}` must give every
//! hyperedge a vertex whose color is unique within the edge. In the
//! *multicoloring* variant (the P-SLOCAL-complete one, Theorem 1.2)
//! "each node is allowed to have more than one color and all other
//! requirements are the same". [`Multicoloring`] stores a set of colors
//! per vertex; the Theorem 1.1 reduction grows one by adding a
//! phase-palette color per phase to some vertices.

use pslocal_graph::{Color, NodeId, Palette};
use serde::{Deserialize, Serialize};

/// A multicoloring: each vertex holds a (possibly empty) set of colors.
///
/// # Examples
///
/// ```
/// use pslocal_cfcolor::Multicoloring;
/// use pslocal_graph::{Color, NodeId};
///
/// let mut mc = Multicoloring::new(3);
/// mc.add_color(NodeId::new(0), Color::new(1));
/// mc.add_color(NodeId::new(0), Color::new(4));
/// assert_eq!(mc.colors_of(NodeId::new(0)), &[Color::new(1), Color::new(4)]);
/// assert_eq!(mc.total_color_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Multicoloring {
    /// Sorted, deduplicated color list per vertex.
    colors: Vec<Vec<Color>>,
}

impl Multicoloring {
    /// The empty multicoloring on `n` vertices (no vertex has a color).
    pub fn new(n: usize) -> Self {
        Multicoloring { colors: vec![Vec::new(); n] }
    }

    /// Builds a multicoloring from a single-coloring (one color per
    /// vertex).
    pub fn from_single(single: &[Color]) -> Self {
        Multicoloring { colors: single.iter().map(|&c| vec![c]).collect() }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.colors.len()
    }

    /// Adds `color` to `v`'s set (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn add_color(&mut self, v: NodeId, color: Color) {
        let set = &mut self.colors[v.index()];
        if let Err(pos) = set.binary_search(&color) {
            set.insert(pos, color);
        }
    }

    /// The sorted colors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn colors_of(&self, v: NodeId) -> &[Color] {
        &self.colors[v.index()]
    }

    /// Whether `v` holds `color`.
    pub fn has_color(&self, v: NodeId, color: Color) -> bool {
        self.colors[v.index()].binary_search(&color).is_ok()
    }

    /// Whether every vertex holds at most one color (i.e. the
    /// multicoloring is a partial single-coloring).
    pub fn is_single(&self) -> bool {
        self.colors.iter().all(|set| set.len() <= 1)
    }

    /// Number of distinct colors used across all vertices — the "total
    /// number of colors" the paper bounds by `k · ρ`.
    pub fn total_color_count(&self) -> usize {
        let mut all: Vec<Color> = self.colors.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// The largest number of colors any single vertex holds.
    pub fn max_colors_per_vertex(&self) -> usize {
        self.colors.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Vertices holding at least one color.
    pub fn colored_vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, set)| !set.is_empty())
            .map(|(i, _)| NodeId::new(i))
    }

    /// Whether every color used belongs to one of `palettes`.
    pub fn uses_only_palettes(&self, palettes: &[Palette]) -> bool {
        self.colors.iter().flatten().all(|&c| palettes.iter().any(|p| p.contains(c)))
    }

    /// Merges another multicoloring into this one (union per vertex).
    ///
    /// # Panics
    ///
    /// Panics if vertex counts differ.
    pub fn merge(&mut self, other: &Multicoloring) {
        assert_eq!(self.node_count(), other.node_count(), "vertex count mismatch");
        for (i, set) in other.colors.iter().enumerate() {
            for &c in set {
                self.add_color(NodeId::new(i), c);
            }
        }
    }
}

/// A partial single-coloring: at most one color per vertex, possibly
/// `⊥` (the paper's Equation (1) object `f_I : V → {1..k} ∪ {⊥}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialColoring {
    assignment: Vec<Option<Color>>,
}

impl PartialColoring {
    /// The all-`⊥` partial coloring on `n` vertices.
    pub fn new(n: usize) -> Self {
        PartialColoring { assignment: vec![None; n] }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// The color of `v`, or `None` for `⊥`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color_of(&self, v: NodeId) -> Option<Color> {
        self.assignment[v.index()]
    }

    /// Assigns `color` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` already holds a *different* color — the paper's
    /// Lemma 2.1 b) shows `f_I` is well defined; this assertion is the
    /// executable form of that claim.
    pub fn assign(&mut self, v: NodeId, color: Color) {
        match self.assignment[v.index()] {
            None => self.assignment[v.index()] = Some(color),
            Some(existing) => assert_eq!(
                existing, color,
                "vertex {v} would receive two colors — f_I not well defined"
            ),
        }
    }

    /// Number of colored (non-`⊥`) vertices.
    pub fn colored_count(&self) -> usize {
        self.assignment.iter().filter(|c| c.is_some()).count()
    }

    /// Converts into a [`Multicoloring`] (colored vertices keep their
    /// single color).
    pub fn to_multicoloring(&self) -> Multicoloring {
        let mut mc = Multicoloring::new(self.node_count());
        for (i, c) in self.assignment.iter().enumerate() {
            if let Some(c) = c {
                mc.add_color(NodeId::new(i), *c);
            }
        }
        mc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_color_is_idempotent_and_sorted() {
        let mut mc = Multicoloring::new(2);
        mc.add_color(NodeId::new(1), Color::new(5));
        mc.add_color(NodeId::new(1), Color::new(2));
        mc.add_color(NodeId::new(1), Color::new(5));
        assert_eq!(mc.colors_of(NodeId::new(1)), &[Color::new(2), Color::new(5)]);
        assert!(mc.has_color(NodeId::new(1), Color::new(2)));
        assert!(!mc.has_color(NodeId::new(0), Color::new(2)));
        assert_eq!(mc.total_color_count(), 2);
        assert_eq!(mc.max_colors_per_vertex(), 2);
    }

    #[test]
    fn single_detection() {
        let mut mc = Multicoloring::new(3);
        assert!(mc.is_single());
        mc.add_color(NodeId::new(0), Color::new(0));
        assert!(mc.is_single());
        mc.add_color(NodeId::new(0), Color::new(1));
        assert!(!mc.is_single());
    }

    #[test]
    fn from_single_round_trips() {
        let single = vec![Color::new(0), Color::new(2), Color::new(0)];
        let mc = Multicoloring::from_single(&single);
        assert!(mc.is_single());
        assert_eq!(mc.total_color_count(), 2);
        assert_eq!(mc.colored_vertices().count(), 3);
    }

    #[test]
    fn palette_discipline() {
        let mut mc = Multicoloring::new(2);
        mc.add_color(NodeId::new(0), Color::new(0));
        mc.add_color(NodeId::new(1), Color::new(4));
        let p0 = Palette::phase(3, 0); // {0,1,2}
        let p1 = Palette::phase(3, 1); // {3,4,5}
        assert!(mc.uses_only_palettes(&[p0, p1]));
        assert!(!mc.uses_only_palettes(&[p0]));
    }

    #[test]
    fn merge_unions_colors() {
        let mut a = Multicoloring::new(2);
        a.add_color(NodeId::new(0), Color::new(0));
        let mut b = Multicoloring::new(2);
        b.add_color(NodeId::new(0), Color::new(1));
        b.add_color(NodeId::new(1), Color::new(0));
        a.merge(&b);
        assert_eq!(a.colors_of(NodeId::new(0)), &[Color::new(0), Color::new(1)]);
        assert_eq!(a.colors_of(NodeId::new(1)), &[Color::new(0)]);
    }

    #[test]
    fn partial_coloring_well_definedness_assertion() {
        let mut f = PartialColoring::new(2);
        assert_eq!(f.color_of(NodeId::new(0)), None);
        f.assign(NodeId::new(0), Color::new(3));
        f.assign(NodeId::new(0), Color::new(3)); // same color is fine
        assert_eq!(f.colored_count(), 1);
        let mc = f.to_multicoloring();
        assert_eq!(mc.colors_of(NodeId::new(0)), &[Color::new(3)]);
        assert!(mc.colors_of(NodeId::new(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not well defined")]
    fn partial_coloring_rejects_double_assignment() {
        let mut f = PartialColoring::new(1);
        f.assign(NodeId::new(0), Color::new(0));
        f.assign(NodeId::new(0), Color::new(1));
    }
}
