//! # pslocal-cfcolor
//!
//! **Conflict-free multicoloring** substrate for the executable
//! reproduction of *"P-SLOCAL-Completeness of Maximum Independent Set
//! Approximation"* (Maus, PODC 2019).
//!
//! Conflict-free multicoloring of almost-uniform hypergraphs is the
//! P-SLOCAL-complete problem (the paper's Theorem 1.2, from \[GKM17\])
//! that the hardness proof of Theorem 1.1 reduces *from*. This crate
//! provides:
//!
//! * [`Multicoloring`] / [`PartialColoring`] — the assignment objects,
//!   including the paper's `f_I : V → {1..k} ∪ {⊥}` with its
//!   well-definedness assertion (Lemma 2.1 b);
//! * [`checker`] — happy-edge computation and conflict-freeness
//!   verification ("we call an edge with this property happy");
//! * [`greedy`] — direct baselines (primal-graph coloring, phase
//!   greedy) that the reduction is compared against;
//! * [`interval`] — the dyadic `O(log n)` coloring of interval
//!   hypergraphs, the \[DN18\] setting the paper adapts;
//! * [`CfMulticoloringProblem`] — the problem verifier with color
//!   budget.
//!
//! # Examples
//!
//! ```
//! use pslocal_cfcolor::{checker, greedy};
//! use pslocal_graph::generators::hyper::random_uniform_hypergraph;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let h = random_uniform_hypergraph(&mut rng, 30, 20, 4);
//! let outcome = greedy::greedy_cf_multicoloring(&h);
//! assert!(checker::is_conflict_free(&h, &outcome.coloring));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod greedy;
pub mod interval;
pub mod multicoloring;
pub mod problem;
pub mod slocal_cf;
pub mod unique_max;

pub use checker::{
    happy_count, happy_edges, happy_witness, is_conflict_free, is_edge_happy, unhappy_edges,
    CfReport,
};
pub use greedy::{cf_via_primal_coloring, greedy_cf_multicoloring, GreedyCfOutcome};
pub use multicoloring::{Multicoloring, PartialColoring};
pub use problem::{CfMulticoloringProblem, CfViolation};
pub use slocal_cf::{slocal_cf_coloring, SlocalCfOutcome};
pub use unique_max::{
    greedy_unique_maximum, is_unique_maximum_coloring, unique_max_witness, UniqueMaxOutcome,
};
