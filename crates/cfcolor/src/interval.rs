//! Conflict-free coloring of **interval hypergraphs** — the \[DN18\]
//! setting whose MaxIS technique the paper adapts for its hardness
//! proof.
//!
//! Vertices are points `0..n` on a line; hyperedges are intervals. The
//! classic *dyadic* coloring assigns point `p` the color
//! `level(p) = trailing_zeros(p + 1)`: points of level `ℓ` are spaced
//! `2^{ℓ+1}` apart, and strictly between two consecutive level-`ℓ`
//! points there is a point of higher level. Hence every interval
//! contains a *unique* maximum-level point, which is a conflict-free
//! witness — `⌊log₂(n+1)⌋ + 1` colors suffice for **all** intervals at
//! once, matching the `Θ(log n)` optimum for this family.
//!
//! This gives experiment F4 its exact baseline; the generic Theorem 1.1
//! reduction (conflict graph + MaxIS oracle, in `pslocal-core`) is run
//! on the same interval instances and compared against it.

use crate::multicoloring::Multicoloring;
use pslocal_graph::{Color, Hypergraph};
use serde::{Deserialize, Serialize};

/// The dyadic level of point `p`: `trailing_zeros(p + 1)`.
///
/// # Examples
///
/// ```
/// use pslocal_cfcolor::interval::dyadic_level;
/// assert_eq!(dyadic_level(0), 0); // p+1 = 1
/// assert_eq!(dyadic_level(1), 1); // p+1 = 2
/// assert_eq!(dyadic_level(7), 3); // p+1 = 8
/// ```
pub fn dyadic_level(p: usize) -> u32 {
    (p + 1).trailing_zeros()
}

/// The dyadic conflict-free coloring of the `n` points `0..n`: point
/// `p` gets color [`dyadic_level`]`(p)`. Conflict-free for *every*
/// interval hyperedge simultaneously.
pub fn dyadic_cf_coloring(n: usize) -> Multicoloring {
    let colors: Vec<Color> = (0..n).map(|p| Color::new(dyadic_level(p) as usize)).collect();
    Multicoloring::from_single(&colors)
}

/// Number of colors the dyadic coloring uses on `0..n`:
/// `⌊log₂ n⌋ + 1` for `n ≥ 1`.
pub fn dyadic_color_count(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (usize::BITS - n.leading_zeros()) as usize
    }
}

/// Checks that a hypergraph really is an interval hypergraph on the
/// line `0..n` (every edge a contiguous run of vertex indices).
pub fn is_interval_hypergraph(h: &Hypergraph) -> bool {
    h.edge_ids().all(|e| {
        let members = h.edge(e);
        members.windows(2).all(|w| w[1].index() == w[0].index() + 1)
    })
}

/// Summary row for interval-hypergraph experiments (F4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalCfSummary {
    /// Number of points.
    pub points: usize,
    /// Number of interval hyperedges.
    pub intervals: usize,
    /// Colors used by the dyadic baseline.
    pub dyadic_colors: usize,
}

impl IntervalCfSummary {
    /// Builds the summary for an interval hypergraph.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not an interval hypergraph.
    pub fn of(h: &Hypergraph) -> Self {
        assert!(is_interval_hypergraph(h), "not an interval hypergraph");
        IntervalCfSummary {
            points: h.node_count(),
            intervals: h.edge_count(),
            dyadic_colors: dyadic_color_count(h.node_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_conflict_free;
    use pslocal_graph::generators::hyper::interval_hypergraph;
    use pslocal_graph::Hypergraph;
    use rand::SeedableRng;

    #[test]
    fn dyadic_levels_are_the_ruler_sequence() {
        let levels: Vec<u32> = (0..15).map(dyadic_level).collect();
        assert_eq!(levels, vec![0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 0, 2, 0, 1, 0]);
    }

    #[test]
    fn dyadic_coloring_is_cf_for_all_intervals() {
        // The complete interval hypergraph on 16 points: every [a, b].
        let n = 16;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a..n {
                edges.push((a..=b).collect::<Vec<usize>>());
            }
        }
        let h = Hypergraph::from_edges(n, edges).unwrap();
        let mc = dyadic_cf_coloring(n);
        assert!(is_conflict_free(&h, &mc));
        assert_eq!(mc.total_color_count(), dyadic_color_count(n));
    }

    #[test]
    fn dyadic_coloring_is_cf_on_random_interval_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let (h, _) = interval_hypergraph(&mut rng, 64, 40, 2, 20);
            assert!(is_interval_hypergraph(&h));
            let mc = dyadic_cf_coloring(64);
            assert!(is_conflict_free(&h, &mc));
        }
    }

    #[test]
    fn color_count_is_logarithmic() {
        assert_eq!(dyadic_color_count(0), 0);
        assert_eq!(dyadic_color_count(1), 1);
        assert_eq!(dyadic_color_count(2), 2);
        assert_eq!(dyadic_color_count(16), 5);
        assert_eq!(dyadic_color_count(1024), 11);
        // The coloring really uses that many on a power-of-two range.
        assert_eq!(dyadic_cf_coloring(16).total_color_count(), 5);
    }

    #[test]
    fn interval_detection() {
        let good = Hypergraph::from_edges(5, [vec![1, 2, 3], vec![0, 1]]).unwrap();
        assert!(is_interval_hypergraph(&good));
        let bad = Hypergraph::from_edges(5, [vec![0, 2]]).unwrap();
        assert!(!is_interval_hypergraph(&bad));
        let summary = IntervalCfSummary::of(&good);
        assert_eq!(summary.points, 5);
        assert_eq!(summary.intervals, 2);
        assert_eq!(summary.dyadic_colors, 3);
    }

    #[test]
    #[should_panic(expected = "not an interval hypergraph")]
    fn summary_rejects_non_intervals() {
        let bad = Hypergraph::from_edges(5, [vec![0, 2]]).unwrap();
        let _ = IntervalCfSummary::of(&bad);
    }
}
