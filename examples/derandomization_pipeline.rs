//! The completeness story, end to end.
//!
//! Theorem 1.1 matters because of what it would unlock: *"If any
//! P-SLOCAL-complete problem can be solved efficiently by a
//! deterministic algorithm in the LOCAL model, all problems in the
//! class P-SLOCAL can be solved efficiently by deterministic
//! algorithms; this includes the MIS and vertex coloring problem."*
//!
//! This example walks the full pipeline on a concrete instance:
//!
//! 1. **containment** — the decomposition-based SLOCAL algorithm
//!    approximates MaxIS on the conflict graph within `c = O(log n)`;
//! 2. **hardness** — that very algorithm, used as the oracle, solves
//!    the P-SLOCAL-complete conflict-free multicoloring problem through
//!    the paper's phased reduction;
//! 3. the composed locality budget is checked to be polylogarithmic —
//!    the quantitative content of "efficiently reduced".
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example derandomization_pipeline
//! ```

use pslocal::core::completeness_on_instance;
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::maxis::{DecompositionOracle, MaxIsOracle};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(60, 25, 3));
    let n = inst.hypergraph.node_count();
    println!("instance: n = {n}, m = {}, planted k = {}", inst.hypergraph.edge_count(), inst.k);

    let oracle = DecompositionOracle::default();
    println!("oracle: {} — the P-SLOCAL MaxIS approximation itself", oracle.name());

    let report = completeness_on_instance(&inst, &oracle)?;

    println!("\n── containment direction (GKM17 Thm 7.1, on the conflict graph) ──");
    let c = &report.containment;
    println!("  conflict graph nodes:      {}", c.nodes);
    println!("  decomposition colors (λ):  {}", c.decomposition_colors);
    println!("  carving radius (locality): {}", c.max_radius);
    println!("  independent set found:     {} (α ≤ {})", c.set_size, c.alpha_bound.value);
    println!("  λ-guarantee verified:      {}", c.lambda_verified);

    println!("\n── hardness direction (the Theorem 1.1 reduction) ──");
    let hd = &report.hardness;
    println!("  λ used for budget:         {:.1}", hd.lambda);
    println!("  phase budget ρ:            {}", hd.rho);
    println!("  phases used:               {}", hd.phases_used);
    println!("  colors used (≤ k·ρ):       {} ≤ {}", hd.total_colors, inst.k * hd.rho);
    println!("  output verified:           {}", report.hardness_verified);

    println!("\n── composition ──");
    println!("  reduction locality budget: {}", hd.locality);
    let polylog = hd.locality.is_polylog(n, 64.0, 2);
    println!("  polylog (≤ 64·log²n)?      {polylog}");
    assert!(report.hardness_verified && c.lambda_verified && polylog);
    println!("\nTheorem 1.1, machine-checked on this instance ✓");
    Ok(())
}
