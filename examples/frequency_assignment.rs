//! Frequency assignment: the classic application behind conflict-free
//! coloring.
//!
//! A field of base stations serves roaming clients. A client hears
//! every station within range; to lock onto one it needs *some* station
//! in range broadcasting on a frequency no other in-range station uses.
//! Model: stations are hypergraph vertices, each client's audible set
//! is a hyperedge, frequencies are colors — a conflict-free
//! multicoloring is exactly an interference-free assignment.
//!
//! This example builds a random geometric instance, assigns frequencies
//! three ways (primal-graph coloring, phase greedy, and the paper's
//! MaxIS reduction), and compares frequency budgets.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example frequency_assignment
//! ```

use pslocal::cfcolor::{cf_via_primal_coloring, greedy_cf_multicoloring, is_conflict_free};
use pslocal::core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal::graph::{Hypergraph, HypergraphBuilder, NodeId};
use pslocal::maxis::{ExactOracle, MaxIsOracle};
use rand::{Rng, SeedableRng};

/// Stations on a unit square; clients hear stations within `radius`.
fn geometric_instance(
    rng: &mut impl Rng,
    stations: usize,
    clients: usize,
    radius: f64,
) -> Hypergraph {
    let positions: Vec<(f64, f64)> =
        (0..stations).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let mut builder = HypergraphBuilder::new(stations);
    let mut placed = 0;
    while placed < clients {
        let (cx, cy) = (rng.gen::<f64>(), rng.gen::<f64>());
        let audible: Vec<NodeId> = positions
            .iter()
            .enumerate()
            .filter(|(_, (x, y))| ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() <= radius)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        // A client hearing nothing (or one station) is trivially served.
        if audible.len() >= 2 {
            builder.add_edge(audible);
            placed += 1;
        }
    }
    builder.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let h = geometric_instance(&mut rng, 60, 35, 0.25);
    println!(
        "{} stations, {} clients (audible sets of size {}..{})",
        h.node_count(),
        h.edge_count(),
        h.min_edge_size().unwrap_or(0),
        h.max_edge_size().unwrap_or(0),
    );

    // Baseline 1: proper coloring of the interference (primal) graph —
    // always valid, usually wasteful.
    let primal = cf_via_primal_coloring(&h);
    assert!(is_conflict_free(&h, &primal));
    println!("primal-graph coloring:   {:3} frequencies", primal.total_color_count());

    // Baseline 2: phase-greedy conflict-free multicoloring.
    let greedy = greedy_cf_multicoloring(&h);
    assert!(is_conflict_free(&h, &greedy.coloring));
    println!(
        "phase-greedy CF:         {:3} frequencies ({} phases)",
        greedy.coloring.total_color_count(),
        greedy.phases
    );

    // The paper's reduction, with k chosen from the greedy baseline (a
    // valid CF k-coloring exists whenever greedy used ≤ k colors).
    let k = greedy.coloring.total_color_count().max(2);
    let out = reduce_cf_to_maxis(&h, &ExactOracle, ReductionConfig::new(k))?;
    assert!(is_conflict_free(&h, &out.coloring));
    println!(
        "MaxIS reduction ({}):  {:3} frequencies ({} phases of palette {k}, ρ = {})",
        ExactOracle.name(),
        out.total_colors,
        out.phases_used,
        out.rho
    );

    // All three serve every client.
    println!("all assignments verified conflict-free — every client can lock on");
    Ok(())
}
