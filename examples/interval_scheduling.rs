//! Interval hypergraphs — the [DN18] setting the paper adapts.
//!
//! Vertices are time slots on a line; each hyperedge is a contiguous
//! booking window. A conflict-free coloring guarantees every window a
//! slot with a unique tag (think: a beacon slot no other slot in the
//! window shares). The dyadic coloring achieves the optimal `Θ(log n)`
//! bound for intervals; the paper's generic conflict-graph + MaxIS
//! reduction is run on the same instance for comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example interval_scheduling
//! ```

use pslocal::cfcolor::interval::{
    dyadic_cf_coloring, dyadic_color_count, is_interval_hypergraph, IntervalCfSummary,
};
use pslocal::cfcolor::is_conflict_free;
use pslocal::core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal::graph::generators::hyper::interval_hypergraph;
use pslocal::maxis::ExactOracle;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let n = 128; // time slots
    let (h, bounds) = interval_hypergraph(&mut rng, n, 60, 4, 24);
    assert!(is_interval_hypergraph(&h));
    let summary = IntervalCfSummary::of(&h);
    println!(
        "{} slots, {} windows, e.g. [{}..{}], [{}..{}], [{}..{}]",
        summary.points,
        summary.intervals,
        bounds[0].0,
        bounds[0].1,
        bounds[1].0,
        bounds[1].1,
        bounds[2].0,
        bounds[2].1,
    );

    // The dyadic ruler coloring: optimal O(log n) for ALL intervals at
    // once.
    let dyadic = dyadic_cf_coloring(n);
    assert!(is_conflict_free(&h, &dyadic));
    println!(
        "dyadic coloring: {} colors (⌊log₂ {n}⌋ + 1 = {})",
        dyadic.total_color_count(),
        dyadic_color_count(n)
    );

    // The paper's reduction with k = the dyadic count (a CF k-coloring
    // certainly exists — the dyadic one).
    let k = dyadic_color_count(n);
    let out = reduce_cf_to_maxis(&h, &ExactOracle, ReductionConfig::new(k))?;
    assert!(is_conflict_free(&h, &out.coloring));
    println!(
        "MaxIS reduction: {} colors in {} phase(s) (budget ρ = {}, k·ρ = {})",
        out.total_colors,
        out.phases_used,
        out.rho,
        k * out.rho
    );

    // With the exact oracle the reduction needs one phase: α(G_k) = m
    // and every window is served immediately.
    assert_eq!(out.phases_used, 1);
    println!("both schedules verified: every booking window has a unique beacon slot");
    Ok(())
}
