//! LOCAL vs SLOCAL on the maximal independent set problem.
//!
//! The paper's opening tension: MIS has an `O(log n)`-round
//! *randomized* LOCAL algorithm [Lub86] and a trivial locality-1
//! SLOCAL algorithm, but no known polylog *deterministic* LOCAL
//! algorithm — the gap the P-SLOCAL programme (and Theorem 1.1)
//! formalizes. This example runs both sides on the same graphs and
//! prints the resource each model actually consumed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example local_vs_slocal
//! ```

use pslocal::graph::generators::random::gnp;
use pslocal::graph::Graph;
use pslocal::local::{algorithms::LubyMis, Engine, Network};
use pslocal::slocal::{algorithms::GreedyMis, orders, run};
use rand::SeedableRng;

fn compare(g: &Graph, seed: u64) -> Result<(usize, usize, usize), Box<dyn std::error::Error>> {
    let n = g.node_count();

    // LOCAL: Luby's randomized MIS; cost = communication rounds.
    let net = Network::with_scrambled_ids(g.clone(), seed);
    let exec = Engine::new(&net).seed(seed).run(&LubyMis)?;
    let luby_mis = LubyMis::members(&exec.states);
    assert!(g.is_maximal_independent_set(&luby_mis));

    // SLOCAL: the paper's greedy; cost = locality (always 1).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let order = orders::random(&mut rng, n);
    let outcome = run(g, &GreedyMis, &order);
    let greedy_mis = GreedyMis::members(&outcome.states);
    assert!(g.is_maximal_independent_set(&greedy_mis));

    Ok((exec.trace.rounds, outcome.trace.realized_locality, luby_mis.len().max(greedy_mis.len())))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:>6} {:>14} {:>16} {:>10}", "n", "LOCAL rounds", "SLOCAL locality", "|MIS|");
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for exp in 5..11 {
        let n = 1usize << exp;
        // Keep average degree ≈ 8 as n grows.
        let p = (8.0 / n as f64).min(1.0);
        let g = gnp(&mut rng, n, p);
        let (rounds, locality, mis) = compare(&g, exp as u64)?;
        println!("{n:>6} {rounds:>14} {locality:>16} {mis:>10}");
    }
    println!(
        "\nLuby's rounds grow ~log n (randomized); the SLOCAL greedy needs locality 1 \
         on every size — the asymmetry Theorem 1.1 is about."
    );
    Ok(())
}
