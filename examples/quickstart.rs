//! Quickstart: the Theorem 1.1 reduction in one page.
//!
//! Generates an almost-uniform hypergraph with a planted conflict-free
//! `k`-coloring, solves conflict-free multicoloring through a
//! λ-approximate MaxIS oracle (the paper's hardness reduction), and
//! verifies the output.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pslocal::cfcolor::{CfMulticoloringProblem, CfReport};
use pslocal::core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::HypergraphStats;
use pslocal::maxis::{GreedyOracle, MaxIsOracle};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);

    // 1. An instance that provably admits a conflict-free k-coloring.
    let k = 4;
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(80, 40, k));
    let h = &inst.hypergraph;
    println!("instance: {}", HypergraphStats::of(h));
    println!("planted palette size k = {k}");

    // 2. Pick a MaxIS oracle — the reduction is generic in it.
    let oracle = GreedyOracle;
    println!("oracle: {} ({})", oracle.name(), oracle.guarantee());

    // 3. Run the paper's phased reduction.
    let out = reduce_cf_to_maxis(h, &oracle, ReductionConfig::new(k))?;
    println!(
        "reduction: λ = {:.1}, ρ = {} phases budgeted, {} used, {} colors total",
        out.lambda, out.rho, out.phases_used, out.total_colors
    );
    for r in &out.records {
        println!(
            "  phase {}: |E_i| = {:3} → |E_(i+1)| = {:3}   (G_k: {} nodes, {} edges, |I| = {})",
            r.phase,
            r.edges_before,
            r.edges_after,
            r.conflict_nodes,
            r.conflict_edges,
            r.independent_set_size
        );
    }

    // 4. Verify: conflict-free, within the k·ρ color budget.
    let problem = CfMulticoloringProblem { max_colors: k * out.rho, epsilon: inst.epsilon };
    problem.verify(h, &out.coloring)?;
    let report = CfReport::of(h, &out.coloring);
    println!(
        "verified: {}/{} edges happy, {} colors (budget {})",
        report.happy,
        report.edges,
        report.colors_used,
        k * out.rho
    );
    println!("locality budget: {}", out.locality);
    Ok(())
}
