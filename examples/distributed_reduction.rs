//! The reduction running **entirely in the LOCAL model**.
//!
//! Composes the paper's side claims into one distributed pipeline:
//! the conflict graph `G_k` is simulated inside `H` with dilation 1
//! (each triple `(e, v, c)` lives at vertex `v`), Luby's randomized
//! MIS plays the λ-approximate oracle on the simulated graph, and the
//! phased reduction charges every oracle round to rounds of `H`. The
//! printout is the round bill a real deployment would pay.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example distributed_reduction
//! ```

use pslocal::cfcolor::checker;
use pslocal::core::distributed_reduction;
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let k = 3;
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(72, 36, k));
    let h = &inst.hypergraph;
    println!("instance: n = {}, m = {}, k = {k}", h.node_count(), h.edge_count());

    let out = distributed_reduction(h, k, 0xBEEF)?;
    assert!(checker::is_conflict_free(h, &out.coloring));

    println!("\nphase  edges  luby-rounds  dilation  H-rounds");
    for p in &out.phases {
        println!(
            "{:>5}  {:>5}  {:>11}  {:>8}  {:>8}",
            p.phase, p.edges_before, p.oracle_rounds, p.dilation, p.host_rounds
        );
    }
    println!(
        "\ntotal: {} phases (budget ρ = {}), {} LOCAL rounds on H, {} colors",
        out.phases.len(),
        out.rho,
        out.total_host_rounds,
        out.coloring.total_color_count()
    );
    println!("output verified conflict-free ✓");
    Ok(())
}
