/root/repo/target/debug/examples/frequency_assignment-0d7e398edfa5a8af.d: examples/frequency_assignment.rs Cargo.toml

/root/repo/target/debug/examples/libfrequency_assignment-0d7e398edfa5a8af.rmeta: examples/frequency_assignment.rs Cargo.toml

examples/frequency_assignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
