/root/repo/target/debug/examples/derandomization_pipeline-bf24e51aa2f8c834.d: examples/derandomization_pipeline.rs

/root/repo/target/debug/examples/derandomization_pipeline-bf24e51aa2f8c834: examples/derandomization_pipeline.rs

examples/derandomization_pipeline.rs:
