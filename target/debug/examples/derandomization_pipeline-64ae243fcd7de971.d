/root/repo/target/debug/examples/derandomization_pipeline-64ae243fcd7de971.d: examples/derandomization_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libderandomization_pipeline-64ae243fcd7de971.rmeta: examples/derandomization_pipeline.rs Cargo.toml

examples/derandomization_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
