/root/repo/target/debug/examples/interval_scheduling-938e3a9a210614aa.d: examples/interval_scheduling.rs Cargo.toml

/root/repo/target/debug/examples/libinterval_scheduling-938e3a9a210614aa.rmeta: examples/interval_scheduling.rs Cargo.toml

examples/interval_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
