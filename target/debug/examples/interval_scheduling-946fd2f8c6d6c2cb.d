/root/repo/target/debug/examples/interval_scheduling-946fd2f8c6d6c2cb.d: examples/interval_scheduling.rs

/root/repo/target/debug/examples/interval_scheduling-946fd2f8c6d6c2cb: examples/interval_scheduling.rs

examples/interval_scheduling.rs:
