/root/repo/target/debug/examples/local_vs_slocal-b26e6e871944cc9c.d: examples/local_vs_slocal.rs Cargo.toml

/root/repo/target/debug/examples/liblocal_vs_slocal-b26e6e871944cc9c.rmeta: examples/local_vs_slocal.rs Cargo.toml

examples/local_vs_slocal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
