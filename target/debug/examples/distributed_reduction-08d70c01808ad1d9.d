/root/repo/target/debug/examples/distributed_reduction-08d70c01808ad1d9.d: examples/distributed_reduction.rs

/root/repo/target/debug/examples/distributed_reduction-08d70c01808ad1d9: examples/distributed_reduction.rs

examples/distributed_reduction.rs:
