/root/repo/target/debug/examples/frequency_assignment-77919db22789b605.d: examples/frequency_assignment.rs

/root/repo/target/debug/examples/frequency_assignment-77919db22789b605: examples/frequency_assignment.rs

examples/frequency_assignment.rs:
