/root/repo/target/debug/examples/quickstart-1ae401b1cefed075.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1ae401b1cefed075: examples/quickstart.rs

examples/quickstart.rs:
