/root/repo/target/debug/examples/local_vs_slocal-6c212465aff00b8f.d: examples/local_vs_slocal.rs

/root/repo/target/debug/examples/local_vs_slocal-6c212465aff00b8f: examples/local_vs_slocal.rs

examples/local_vs_slocal.rs:
