/root/repo/target/debug/examples/distributed_reduction-e4f7dc28e0b3c741.d: examples/distributed_reduction.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_reduction-e4f7dc28e0b3c741.rmeta: examples/distributed_reduction.rs Cargo.toml

examples/distributed_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
