/root/repo/target/debug/deps/reduction_properties-440d710236b9faea.d: tests/reduction_properties.rs

/root/repo/target/debug/deps/reduction_properties-440d710236b9faea: tests/reduction_properties.rs

tests/reduction_properties.rs:
