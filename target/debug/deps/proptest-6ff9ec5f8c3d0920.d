/root/repo/target/debug/deps/proptest-6ff9ec5f8c3d0920.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6ff9ec5f8c3d0920.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6ff9ec5f8c3d0920.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
