/root/repo/target/debug/deps/pslocal_cfcolor-9a80b439df946135.d: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

/root/repo/target/debug/deps/pslocal_cfcolor-9a80b439df946135: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

crates/cfcolor/src/lib.rs:
crates/cfcolor/src/checker.rs:
crates/cfcolor/src/greedy.rs:
crates/cfcolor/src/interval.rs:
crates/cfcolor/src/multicoloring.rs:
crates/cfcolor/src/problem.rs:
crates/cfcolor/src/slocal_cf.rs:
crates/cfcolor/src/unique_max.rs:
