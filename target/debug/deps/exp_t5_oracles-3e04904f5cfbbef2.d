/root/repo/target/debug/deps/exp_t5_oracles-3e04904f5cfbbef2.d: crates/bench/src/bin/exp_t5_oracles.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t5_oracles-3e04904f5cfbbef2.rmeta: crates/bench/src/bin/exp_t5_oracles.rs Cargo.toml

crates/bench/src/bin/exp_t5_oracles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
