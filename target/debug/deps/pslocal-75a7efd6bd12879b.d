/root/repo/target/debug/deps/pslocal-75a7efd6bd12879b.d: src/lib.rs

/root/repo/target/debug/deps/libpslocal-75a7efd6bd12879b.rlib: src/lib.rs

/root/repo/target/debug/deps/libpslocal-75a7efd6bd12879b.rmeta: src/lib.rs

src/lib.rs:
