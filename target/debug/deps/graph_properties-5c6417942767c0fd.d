/root/repo/target/debug/deps/graph_properties-5c6417942767c0fd.d: tests/graph_properties.rs

/root/repo/target/debug/deps/graph_properties-5c6417942767c0fd: tests/graph_properties.rs

tests/graph_properties.rs:
