/root/repo/target/debug/deps/exp_t4_phase_bound-b87a5b51853172a7.d: crates/bench/src/bin/exp_t4_phase_bound.rs

/root/repo/target/debug/deps/exp_t4_phase_bound-b87a5b51853172a7: crates/bench/src/bin/exp_t4_phase_bound.rs

crates/bench/src/bin/exp_t4_phase_bound.rs:
