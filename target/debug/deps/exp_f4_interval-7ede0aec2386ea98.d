/root/repo/target/debug/deps/exp_f4_interval-7ede0aec2386ea98.d: crates/bench/src/bin/exp_f4_interval.rs

/root/repo/target/debug/deps/exp_f4_interval-7ede0aec2386ea98: crates/bench/src/bin/exp_f4_interval.rs

crates/bench/src/bin/exp_f4_interval.rs:
