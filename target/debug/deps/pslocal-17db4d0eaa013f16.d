/root/repo/target/debug/deps/pslocal-17db4d0eaa013f16.d: src/lib.rs

/root/repo/target/debug/deps/pslocal-17db4d0eaa013f16: src/lib.rs

src/lib.rs:
