/root/repo/target/debug/deps/exp_t3_lemma21b-ff27d7d7208e4285.d: crates/bench/src/bin/exp_t3_lemma21b.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t3_lemma21b-ff27d7d7208e4285.rmeta: crates/bench/src/bin/exp_t3_lemma21b.rs Cargo.toml

crates/bench/src/bin/exp_t3_lemma21b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
