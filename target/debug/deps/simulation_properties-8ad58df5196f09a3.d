/root/repo/target/debug/deps/simulation_properties-8ad58df5196f09a3.d: tests/simulation_properties.rs

/root/repo/target/debug/deps/simulation_properties-8ad58df5196f09a3: tests/simulation_properties.rs

tests/simulation_properties.rs:
