/root/repo/target/debug/deps/pslocal_maxis-63b071bcca44ba21.d: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

/root/repo/target/debug/deps/libpslocal_maxis-63b071bcca44ba21.rlib: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

/root/repo/target/debug/deps/libpslocal_maxis-63b071bcca44ba21.rmeta: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

crates/maxis/src/lib.rs:
crates/maxis/src/adversarial.rs:
crates/maxis/src/bounds.rs:
crates/maxis/src/clique_removal.rs:
crates/maxis/src/decomposition.rs:
crates/maxis/src/exact.rs:
crates/maxis/src/faulty.rs:
crates/maxis/src/greedy.rs:
crates/maxis/src/local_search.rs:
crates/maxis/src/luby.rs:
crates/maxis/src/oracle.rs:
