/root/repo/target/debug/deps/exp_t8_scaling-212e057b538bfea9.d: crates/bench/src/bin/exp_t8_scaling.rs

/root/repo/target/debug/deps/exp_t8_scaling-212e057b538bfea9: crates/bench/src/bin/exp_t8_scaling.rs

crates/bench/src/bin/exp_t8_scaling.rs:
