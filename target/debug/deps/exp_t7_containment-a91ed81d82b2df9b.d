/root/repo/target/debug/deps/exp_t7_containment-a91ed81d82b2df9b.d: crates/bench/src/bin/exp_t7_containment.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t7_containment-a91ed81d82b2df9b.rmeta: crates/bench/src/bin/exp_t7_containment.rs Cargo.toml

crates/bench/src/bin/exp_t7_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
