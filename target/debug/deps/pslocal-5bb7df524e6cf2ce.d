/root/repo/target/debug/deps/pslocal-5bb7df524e6cf2ce.d: src/bin/pslocal.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal-5bb7df524e6cf2ce.rmeta: src/bin/pslocal.rs Cargo.toml

src/bin/pslocal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
