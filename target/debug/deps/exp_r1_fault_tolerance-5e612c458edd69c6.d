/root/repo/target/debug/deps/exp_r1_fault_tolerance-5e612c458edd69c6.d: crates/bench/src/bin/exp_r1_fault_tolerance.rs

/root/repo/target/debug/deps/exp_r1_fault_tolerance-5e612c458edd69c6: crates/bench/src/bin/exp_r1_fault_tolerance.rs

crates/bench/src/bin/exp_r1_fault_tolerance.rs:
