/root/repo/target/debug/deps/model_cross_checks-06cd320a9e5307ab.d: tests/model_cross_checks.rs

/root/repo/target/debug/deps/model_cross_checks-06cd320a9e5307ab: tests/model_cross_checks.rs

tests/model_cross_checks.rs:
