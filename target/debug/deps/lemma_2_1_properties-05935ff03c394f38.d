/root/repo/target/debug/deps/lemma_2_1_properties-05935ff03c394f38.d: tests/lemma_2_1_properties.rs

/root/repo/target/debug/deps/lemma_2_1_properties-05935ff03c394f38: tests/lemma_2_1_properties.rs

tests/lemma_2_1_properties.rs:
