/root/repo/target/debug/deps/exp_a1_palette_ablation-6351c9e0b0697ec3.d: crates/bench/src/bin/exp_a1_palette_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a1_palette_ablation-6351c9e0b0697ec3.rmeta: crates/bench/src/bin/exp_a1_palette_ablation.rs Cargo.toml

crates/bench/src/bin/exp_a1_palette_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
