/root/repo/target/debug/deps/exp_t2_lemma21a-eedd3c3a955b0037.d: crates/bench/src/bin/exp_t2_lemma21a.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t2_lemma21a-eedd3c3a955b0037.rmeta: crates/bench/src/bin/exp_t2_lemma21a.rs Cargo.toml

crates/bench/src/bin/exp_t2_lemma21a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
