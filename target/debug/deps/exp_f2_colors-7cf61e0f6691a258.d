/root/repo/target/debug/deps/exp_f2_colors-7cf61e0f6691a258.d: crates/bench/src/bin/exp_f2_colors.rs Cargo.toml

/root/repo/target/debug/deps/libexp_f2_colors-7cf61e0f6691a258.rmeta: crates/bench/src/bin/exp_f2_colors.rs Cargo.toml

crates/bench/src/bin/exp_f2_colors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
