/root/repo/target/debug/deps/theorem_1_1-c9c486ead98b2394.d: tests/theorem_1_1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem_1_1-c9c486ead98b2394.rmeta: tests/theorem_1_1.rs Cargo.toml

tests/theorem_1_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
