/root/repo/target/debug/deps/slocal_algorithms-7f7b11b824374384.d: crates/bench/benches/slocal_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libslocal_algorithms-7f7b11b824374384.rmeta: crates/bench/benches/slocal_algorithms.rs Cargo.toml

crates/bench/benches/slocal_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
