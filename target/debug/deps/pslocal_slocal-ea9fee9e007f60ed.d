/root/repo/target/debug/deps/pslocal_slocal-ea9fee9e007f60ed.d: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

/root/repo/target/debug/deps/pslocal_slocal-ea9fee9e007f60ed: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

crates/slocal/src/lib.rs:
crates/slocal/src/algorithms.rs:
crates/slocal/src/checkable.rs:
crates/slocal/src/decomposition.rs:
crates/slocal/src/problems.rs:
crates/slocal/src/runtime.rs:
crates/slocal/src/simulate.rs:
crates/slocal/src/view.rs:
