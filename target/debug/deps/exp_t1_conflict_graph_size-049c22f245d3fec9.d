/root/repo/target/debug/deps/exp_t1_conflict_graph_size-049c22f245d3fec9.d: crates/bench/src/bin/exp_t1_conflict_graph_size.rs

/root/repo/target/debug/deps/exp_t1_conflict_graph_size-049c22f245d3fec9: crates/bench/src/bin/exp_t1_conflict_graph_size.rs

crates/bench/src/bin/exp_t1_conflict_graph_size.rs:
