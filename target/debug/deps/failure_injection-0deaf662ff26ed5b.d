/root/repo/target/debug/deps/failure_injection-0deaf662ff26ed5b.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-0deaf662ff26ed5b: tests/failure_injection.rs

tests/failure_injection.rs:
