/root/repo/target/debug/deps/exp_t8_scaling-0dee76ea6a0c8d69.d: crates/bench/src/bin/exp_t8_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t8_scaling-0dee76ea6a0c8d69.rmeta: crates/bench/src/bin/exp_t8_scaling.rs Cargo.toml

crates/bench/src/bin/exp_t8_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
