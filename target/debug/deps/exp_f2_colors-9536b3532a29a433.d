/root/repo/target/debug/deps/exp_f2_colors-9536b3532a29a433.d: crates/bench/src/bin/exp_f2_colors.rs

/root/repo/target/debug/deps/exp_f2_colors-9536b3532a29a433: crates/bench/src/bin/exp_f2_colors.rs

crates/bench/src/bin/exp_f2_colors.rs:
