/root/repo/target/debug/deps/pslocal_slocal-e2c0a1a1754bb525.d: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_slocal-e2c0a1a1754bb525.rmeta: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs Cargo.toml

crates/slocal/src/lib.rs:
crates/slocal/src/algorithms.rs:
crates/slocal/src/checkable.rs:
crates/slocal/src/decomposition.rs:
crates/slocal/src/problems.rs:
crates/slocal/src/runtime.rs:
crates/slocal/src/simulate.rs:
crates/slocal/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
