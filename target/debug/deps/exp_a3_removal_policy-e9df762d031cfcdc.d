/root/repo/target/debug/deps/exp_a3_removal_policy-e9df762d031cfcdc.d: crates/bench/src/bin/exp_a3_removal_policy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a3_removal_policy-e9df762d031cfcdc.rmeta: crates/bench/src/bin/exp_a3_removal_policy.rs Cargo.toml

crates/bench/src/bin/exp_a3_removal_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
