/root/repo/target/debug/deps/chaos-b01e412257299b1c.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-b01e412257299b1c: tests/chaos.rs

tests/chaos.rs:
