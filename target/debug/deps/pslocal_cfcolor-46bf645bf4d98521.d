/root/repo/target/debug/deps/pslocal_cfcolor-46bf645bf4d98521.d: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

/root/repo/target/debug/deps/libpslocal_cfcolor-46bf645bf4d98521.rlib: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

/root/repo/target/debug/deps/libpslocal_cfcolor-46bf645bf4d98521.rmeta: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

crates/cfcolor/src/lib.rs:
crates/cfcolor/src/checker.rs:
crates/cfcolor/src/greedy.rs:
crates/cfcolor/src/interval.rs:
crates/cfcolor/src/multicoloring.rs:
crates/cfcolor/src/problem.rs:
crates/cfcolor/src/slocal_cf.rs:
crates/cfcolor/src/unique_max.rs:
