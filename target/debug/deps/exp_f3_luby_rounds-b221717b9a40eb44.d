/root/repo/target/debug/deps/exp_f3_luby_rounds-b221717b9a40eb44.d: crates/bench/src/bin/exp_f3_luby_rounds.rs

/root/repo/target/debug/deps/exp_f3_luby_rounds-b221717b9a40eb44: crates/bench/src/bin/exp_f3_luby_rounds.rs

crates/bench/src/bin/exp_f3_luby_rounds.rs:
