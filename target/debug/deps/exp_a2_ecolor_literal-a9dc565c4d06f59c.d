/root/repo/target/debug/deps/exp_a2_ecolor_literal-a9dc565c4d06f59c.d: crates/bench/src/bin/exp_a2_ecolor_literal.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a2_ecolor_literal-a9dc565c4d06f59c.rmeta: crates/bench/src/bin/exp_a2_ecolor_literal.rs Cargo.toml

crates/bench/src/bin/exp_a2_ecolor_literal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
