/root/repo/target/debug/deps/pslocal_bench-d58e91198bfbd4c7.d: crates/bench/src/lib.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpslocal_bench-d58e91198bfbd4c7.rlib: crates/bench/src/lib.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpslocal_bench-d58e91198bfbd4c7.rmeta: crates/bench/src/lib.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
