/root/repo/target/debug/deps/exp_t2_lemma21a-6b7dd9063016ecac.d: crates/bench/src/bin/exp_t2_lemma21a.rs

/root/repo/target/debug/deps/exp_t2_lemma21a-6b7dd9063016ecac: crates/bench/src/bin/exp_t2_lemma21a.rs

crates/bench/src/bin/exp_t2_lemma21a.rs:
