/root/repo/target/debug/deps/exp_t8_scaling-e4a764660b23ce28.d: crates/bench/src/bin/exp_t8_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t8_scaling-e4a764660b23ce28.rmeta: crates/bench/src/bin/exp_t8_scaling.rs Cargo.toml

crates/bench/src/bin/exp_t8_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
