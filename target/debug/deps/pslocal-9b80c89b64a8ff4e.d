/root/repo/target/debug/deps/pslocal-9b80c89b64a8ff4e.d: src/bin/pslocal.rs

/root/repo/target/debug/deps/pslocal-9b80c89b64a8ff4e: src/bin/pslocal.rs

src/bin/pslocal.rs:
