/root/repo/target/debug/deps/exp_t1_conflict_graph_size-1b0e56d9ef5fe7e0.d: crates/bench/src/bin/exp_t1_conflict_graph_size.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t1_conflict_graph_size-1b0e56d9ef5fe7e0.rmeta: crates/bench/src/bin/exp_t1_conflict_graph_size.rs Cargo.toml

crates/bench/src/bin/exp_t1_conflict_graph_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
