/root/repo/target/debug/deps/theorem_1_1-b4ff861afa908699.d: tests/theorem_1_1.rs

/root/repo/target/debug/deps/theorem_1_1-b4ff861afa908699: tests/theorem_1_1.rs

tests/theorem_1_1.rs:
