/root/repo/target/debug/deps/exp_f5_distributed-9bfebad14b6b0a89.d: crates/bench/src/bin/exp_f5_distributed.rs Cargo.toml

/root/repo/target/debug/deps/libexp_f5_distributed-9bfebad14b6b0a89.rmeta: crates/bench/src/bin/exp_f5_distributed.rs Cargo.toml

crates/bench/src/bin/exp_f5_distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
