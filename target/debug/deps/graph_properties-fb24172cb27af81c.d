/root/repo/target/debug/deps/graph_properties-fb24172cb27af81c.d: tests/graph_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_properties-fb24172cb27af81c.rmeta: tests/graph_properties.rs Cargo.toml

tests/graph_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
