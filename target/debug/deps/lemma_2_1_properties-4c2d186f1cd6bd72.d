/root/repo/target/debug/deps/lemma_2_1_properties-4c2d186f1cd6bd72.d: tests/lemma_2_1_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblemma_2_1_properties-4c2d186f1cd6bd72.rmeta: tests/lemma_2_1_properties.rs Cargo.toml

tests/lemma_2_1_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
