/root/repo/target/debug/deps/pslocal_cfcolor-3dbc08539f5d52e0.d: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_cfcolor-3dbc08539f5d52e0.rmeta: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs Cargo.toml

crates/cfcolor/src/lib.rs:
crates/cfcolor/src/checker.rs:
crates/cfcolor/src/greedy.rs:
crates/cfcolor/src/interval.rs:
crates/cfcolor/src/multicoloring.rs:
crates/cfcolor/src/problem.rs:
crates/cfcolor/src/slocal_cf.rs:
crates/cfcolor/src/unique_max.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
