/root/repo/target/debug/deps/pslocal_local-019d28f8f965178d.d: crates/local/src/lib.rs crates/local/src/algorithms/mod.rs crates/local/src/algorithms/bfs.rs crates/local/src/algorithms/cole_vishkin.rs crates/local/src/algorithms/coloring.rs crates/local/src/algorithms/luby.rs crates/local/src/algorithms/matching.rs crates/local/src/algorithms/reduce.rs crates/local/src/algorithms/ruling.rs crates/local/src/network.rs crates/local/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_local-019d28f8f965178d.rmeta: crates/local/src/lib.rs crates/local/src/algorithms/mod.rs crates/local/src/algorithms/bfs.rs crates/local/src/algorithms/cole_vishkin.rs crates/local/src/algorithms/coloring.rs crates/local/src/algorithms/luby.rs crates/local/src/algorithms/matching.rs crates/local/src/algorithms/reduce.rs crates/local/src/algorithms/ruling.rs crates/local/src/network.rs crates/local/src/runtime.rs Cargo.toml

crates/local/src/lib.rs:
crates/local/src/algorithms/mod.rs:
crates/local/src/algorithms/bfs.rs:
crates/local/src/algorithms/cole_vishkin.rs:
crates/local/src/algorithms/coloring.rs:
crates/local/src/algorithms/luby.rs:
crates/local/src/algorithms/matching.rs:
crates/local/src/algorithms/reduce.rs:
crates/local/src/algorithms/ruling.rs:
crates/local/src/network.rs:
crates/local/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
