/root/repo/target/debug/deps/exp_a2_ecolor_literal-cd85cdeb47aac44a.d: crates/bench/src/bin/exp_a2_ecolor_literal.rs

/root/repo/target/debug/deps/exp_a2_ecolor_literal-cd85cdeb47aac44a: crates/bench/src/bin/exp_a2_ecolor_literal.rs

crates/bench/src/bin/exp_a2_ecolor_literal.rs:
