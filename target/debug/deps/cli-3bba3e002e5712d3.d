/root/repo/target/debug/deps/cli-3bba3e002e5712d3.d: tests/cli.rs

/root/repo/target/debug/deps/cli-3bba3e002e5712d3: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pslocal=/root/repo/target/debug/pslocal
