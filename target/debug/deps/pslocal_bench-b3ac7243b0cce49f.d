/root/repo/target/debug/deps/pslocal_bench-b3ac7243b0cce49f.d: crates/bench/src/lib.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/pslocal_bench-b3ac7243b0cce49f: crates/bench/src/lib.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
