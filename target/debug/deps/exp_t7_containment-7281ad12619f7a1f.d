/root/repo/target/debug/deps/exp_t7_containment-7281ad12619f7a1f.d: crates/bench/src/bin/exp_t7_containment.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t7_containment-7281ad12619f7a1f.rmeta: crates/bench/src/bin/exp_t7_containment.rs Cargo.toml

crates/bench/src/bin/exp_t7_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
