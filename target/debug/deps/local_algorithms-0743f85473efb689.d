/root/repo/target/debug/deps/local_algorithms-0743f85473efb689.d: crates/bench/benches/local_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/liblocal_algorithms-0743f85473efb689.rmeta: crates/bench/benches/local_algorithms.rs Cargo.toml

crates/bench/benches/local_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
