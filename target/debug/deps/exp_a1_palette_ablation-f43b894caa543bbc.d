/root/repo/target/debug/deps/exp_a1_palette_ablation-f43b894caa543bbc.d: crates/bench/src/bin/exp_a1_palette_ablation.rs

/root/repo/target/debug/deps/exp_a1_palette_ablation-f43b894caa543bbc: crates/bench/src/bin/exp_a1_palette_ablation.rs

crates/bench/src/bin/exp_a1_palette_ablation.rs:
