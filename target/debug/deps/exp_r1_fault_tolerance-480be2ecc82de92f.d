/root/repo/target/debug/deps/exp_r1_fault_tolerance-480be2ecc82de92f.d: crates/bench/src/bin/exp_r1_fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libexp_r1_fault_tolerance-480be2ecc82de92f.rmeta: crates/bench/src/bin/exp_r1_fault_tolerance.rs Cargo.toml

crates/bench/src/bin/exp_r1_fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
