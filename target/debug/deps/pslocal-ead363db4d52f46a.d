/root/repo/target/debug/deps/pslocal-ead363db4d52f46a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal-ead363db4d52f46a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
