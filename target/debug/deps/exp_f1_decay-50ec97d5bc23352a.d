/root/repo/target/debug/deps/exp_f1_decay-50ec97d5bc23352a.d: crates/bench/src/bin/exp_f1_decay.rs Cargo.toml

/root/repo/target/debug/deps/libexp_f1_decay-50ec97d5bc23352a.rmeta: crates/bench/src/bin/exp_f1_decay.rs Cargo.toml

crates/bench/src/bin/exp_f1_decay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
