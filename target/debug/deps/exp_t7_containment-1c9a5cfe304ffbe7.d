/root/repo/target/debug/deps/exp_t7_containment-1c9a5cfe304ffbe7.d: crates/bench/src/bin/exp_t7_containment.rs

/root/repo/target/debug/deps/exp_t7_containment-1c9a5cfe304ffbe7: crates/bench/src/bin/exp_t7_containment.rs

crates/bench/src/bin/exp_t7_containment.rs:
