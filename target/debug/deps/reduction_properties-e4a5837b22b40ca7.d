/root/repo/target/debug/deps/reduction_properties-e4a5837b22b40ca7.d: tests/reduction_properties.rs Cargo.toml

/root/repo/target/debug/deps/libreduction_properties-e4a5837b22b40ca7.rmeta: tests/reduction_properties.rs Cargo.toml

tests/reduction_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
