/root/repo/target/debug/deps/proptest-2de56e3eb96b68b2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-2de56e3eb96b68b2: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
