/root/repo/target/debug/deps/pslocal-690d0dfde7773acc.d: src/bin/pslocal.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal-690d0dfde7773acc.rmeta: src/bin/pslocal.rs Cargo.toml

src/bin/pslocal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
