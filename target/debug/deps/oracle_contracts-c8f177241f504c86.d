/root/repo/target/debug/deps/oracle_contracts-c8f177241f504c86.d: tests/oracle_contracts.rs

/root/repo/target/debug/deps/oracle_contracts-c8f177241f504c86: tests/oracle_contracts.rs

tests/oracle_contracts.rs:
