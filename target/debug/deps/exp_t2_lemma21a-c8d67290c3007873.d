/root/repo/target/debug/deps/exp_t2_lemma21a-c8d67290c3007873.d: crates/bench/src/bin/exp_t2_lemma21a.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t2_lemma21a-c8d67290c3007873.rmeta: crates/bench/src/bin/exp_t2_lemma21a.rs Cargo.toml

crates/bench/src/bin/exp_t2_lemma21a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
