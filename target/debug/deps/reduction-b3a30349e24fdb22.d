/root/repo/target/debug/deps/reduction-b3a30349e24fdb22.d: crates/bench/benches/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libreduction-b3a30349e24fdb22.rmeta: crates/bench/benches/reduction.rs Cargo.toml

crates/bench/benches/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
