/root/repo/target/debug/deps/pslocal_maxis-1a26a7066ceca92d.d: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_maxis-1a26a7066ceca92d.rmeta: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs Cargo.toml

crates/maxis/src/lib.rs:
crates/maxis/src/adversarial.rs:
crates/maxis/src/bounds.rs:
crates/maxis/src/clique_removal.rs:
crates/maxis/src/decomposition.rs:
crates/maxis/src/exact.rs:
crates/maxis/src/faulty.rs:
crates/maxis/src/greedy.rs:
crates/maxis/src/local_search.rs:
crates/maxis/src/luby.rs:
crates/maxis/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
