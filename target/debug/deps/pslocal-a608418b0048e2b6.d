/root/repo/target/debug/deps/pslocal-a608418b0048e2b6.d: src/bin/pslocal.rs

/root/repo/target/debug/deps/pslocal-a608418b0048e2b6: src/bin/pslocal.rs

src/bin/pslocal.rs:
