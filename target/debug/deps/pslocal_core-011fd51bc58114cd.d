/root/repo/target/debug/deps/pslocal_core-011fd51bc58114cd.d: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_core-011fd51bc58114cd.rmeta: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/completeness.rs:
crates/core/src/conflict_graph.rs:
crates/core/src/containment.rs:
crates/core/src/correspondence.rs:
crates/core/src/distributed.rs:
crates/core/src/reduction.rs:
crates/core/src/resilient.rs:
crates/core/src/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
