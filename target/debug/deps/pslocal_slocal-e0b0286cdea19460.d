/root/repo/target/debug/deps/pslocal_slocal-e0b0286cdea19460.d: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

/root/repo/target/debug/deps/libpslocal_slocal-e0b0286cdea19460.rlib: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

/root/repo/target/debug/deps/libpslocal_slocal-e0b0286cdea19460.rmeta: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

crates/slocal/src/lib.rs:
crates/slocal/src/algorithms.rs:
crates/slocal/src/checkable.rs:
crates/slocal/src/decomposition.rs:
crates/slocal/src/problems.rs:
crates/slocal/src/runtime.rs:
crates/slocal/src/simulate.rs:
crates/slocal/src/view.rs:
