/root/repo/target/debug/deps/pslocal_core-15957e7f3905cc45.d: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/pslocal_core-15957e7f3905cc45: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/completeness.rs:
crates/core/src/conflict_graph.rs:
crates/core/src/containment.rs:
crates/core/src/correspondence.rs:
crates/core/src/distributed.rs:
crates/core/src/reduction.rs:
crates/core/src/resilient.rs:
crates/core/src/simulation.rs:
