/root/repo/target/debug/deps/exp_t3_lemma21b-8925f1a92e2b7545.d: crates/bench/src/bin/exp_t3_lemma21b.rs

/root/repo/target/debug/deps/exp_t3_lemma21b-8925f1a92e2b7545: crates/bench/src/bin/exp_t3_lemma21b.rs

crates/bench/src/bin/exp_t3_lemma21b.rs:
