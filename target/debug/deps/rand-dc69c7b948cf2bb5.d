/root/repo/target/debug/deps/rand-dc69c7b948cf2bb5.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-dc69c7b948cf2bb5.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-dc69c7b948cf2bb5.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
