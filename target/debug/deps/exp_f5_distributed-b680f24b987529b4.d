/root/repo/target/debug/deps/exp_f5_distributed-b680f24b987529b4.d: crates/bench/src/bin/exp_f5_distributed.rs

/root/repo/target/debug/deps/exp_f5_distributed-b680f24b987529b4: crates/bench/src/bin/exp_f5_distributed.rs

crates/bench/src/bin/exp_f5_distributed.rs:
