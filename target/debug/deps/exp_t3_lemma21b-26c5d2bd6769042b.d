/root/repo/target/debug/deps/exp_t3_lemma21b-26c5d2bd6769042b.d: crates/bench/src/bin/exp_t3_lemma21b.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t3_lemma21b-26c5d2bd6769042b.rmeta: crates/bench/src/bin/exp_t3_lemma21b.rs Cargo.toml

crates/bench/src/bin/exp_t3_lemma21b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
