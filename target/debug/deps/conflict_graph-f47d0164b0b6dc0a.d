/root/repo/target/debug/deps/conflict_graph-f47d0164b0b6dc0a.d: crates/bench/benches/conflict_graph.rs Cargo.toml

/root/repo/target/debug/deps/libconflict_graph-f47d0164b0b6dc0a.rmeta: crates/bench/benches/conflict_graph.rs Cargo.toml

crates/bench/benches/conflict_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
