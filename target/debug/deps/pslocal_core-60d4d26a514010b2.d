/root/repo/target/debug/deps/pslocal_core-60d4d26a514010b2.d: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libpslocal_core-60d4d26a514010b2.rlib: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libpslocal_core-60d4d26a514010b2.rmeta: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/completeness.rs:
crates/core/src/conflict_graph.rs:
crates/core/src/containment.rs:
crates/core/src/correspondence.rs:
crates/core/src/distributed.rs:
crates/core/src/reduction.rs:
crates/core/src/resilient.rs:
crates/core/src/simulation.rs:
