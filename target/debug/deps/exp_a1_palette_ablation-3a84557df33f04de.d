/root/repo/target/debug/deps/exp_a1_palette_ablation-3a84557df33f04de.d: crates/bench/src/bin/exp_a1_palette_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a1_palette_ablation-3a84557df33f04de.rmeta: crates/bench/src/bin/exp_a1_palette_ablation.rs Cargo.toml

crates/bench/src/bin/exp_a1_palette_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
