/root/repo/target/debug/deps/exp_a3_removal_policy-cfc65d3e18cd0c51.d: crates/bench/src/bin/exp_a3_removal_policy.rs

/root/repo/target/debug/deps/exp_a3_removal_policy-cfc65d3e18cd0c51: crates/bench/src/bin/exp_a3_removal_policy.rs

crates/bench/src/bin/exp_a3_removal_policy.rs:
