/root/repo/target/debug/deps/oracle_contracts-ef69e10d8c435bcc.d: tests/oracle_contracts.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_contracts-ef69e10d8c435bcc.rmeta: tests/oracle_contracts.rs Cargo.toml

tests/oracle_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
