/root/repo/target/debug/deps/pslocal-3cfb8942abd8f939.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal-3cfb8942abd8f939.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
