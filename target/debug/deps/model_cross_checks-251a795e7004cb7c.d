/root/repo/target/debug/deps/model_cross_checks-251a795e7004cb7c.d: tests/model_cross_checks.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_cross_checks-251a795e7004cb7c.rmeta: tests/model_cross_checks.rs Cargo.toml

tests/model_cross_checks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
