/root/repo/target/debug/deps/exp_f4_interval-557c10dd43cc4ab3.d: crates/bench/src/bin/exp_f4_interval.rs Cargo.toml

/root/repo/target/debug/deps/libexp_f4_interval-557c10dd43cc4ab3.rmeta: crates/bench/src/bin/exp_f4_interval.rs Cargo.toml

crates/bench/src/bin/exp_f4_interval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
