/root/repo/target/debug/deps/cli-fb659ba558bbf3db.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-fb659ba558bbf3db.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pslocal=placeholder:pslocal
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
