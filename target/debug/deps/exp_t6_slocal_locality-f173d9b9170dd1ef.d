/root/repo/target/debug/deps/exp_t6_slocal_locality-f173d9b9170dd1ef.d: crates/bench/src/bin/exp_t6_slocal_locality.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t6_slocal_locality-f173d9b9170dd1ef.rmeta: crates/bench/src/bin/exp_t6_slocal_locality.rs Cargo.toml

crates/bench/src/bin/exp_t6_slocal_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
