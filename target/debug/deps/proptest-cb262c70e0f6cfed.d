/root/repo/target/debug/deps/proptest-cb262c70e0f6cfed.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-cb262c70e0f6cfed.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
