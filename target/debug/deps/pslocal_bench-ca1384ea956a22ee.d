/root/repo/target/debug/deps/pslocal_bench-ca1384ea956a22ee.d: crates/bench/src/lib.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpslocal_bench-ca1384ea956a22ee.rmeta: crates/bench/src/lib.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
