/root/repo/target/debug/deps/oracles-4fa11b5864a1460c.d: crates/bench/benches/oracles.rs Cargo.toml

/root/repo/target/debug/deps/liboracles-4fa11b5864a1460c.rmeta: crates/bench/benches/oracles.rs Cargo.toml

crates/bench/benches/oracles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
