/root/repo/target/debug/deps/exp_f3_luby_rounds-d88306bfbfcc2a5e.d: crates/bench/src/bin/exp_f3_luby_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libexp_f3_luby_rounds-d88306bfbfcc2a5e.rmeta: crates/bench/src/bin/exp_f3_luby_rounds.rs Cargo.toml

crates/bench/src/bin/exp_f3_luby_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
