/root/repo/target/debug/deps/exp_t5_oracles-7c1804ceb91249ea.d: crates/bench/src/bin/exp_t5_oracles.rs

/root/repo/target/debug/deps/exp_t5_oracles-7c1804ceb91249ea: crates/bench/src/bin/exp_t5_oracles.rs

crates/bench/src/bin/exp_t5_oracles.rs:
