/root/repo/target/debug/deps/simulation_properties-0858a1948f463923.d: tests/simulation_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_properties-0858a1948f463923.rmeta: tests/simulation_properties.rs Cargo.toml

tests/simulation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
