/root/repo/target/debug/deps/pslocal_graph-d5dd9339f3694335.d: crates/graph/src/lib.rs crates/graph/src/algo/mod.rs crates/graph/src/algo/cliques.rs crates/graph/src/algo/coloring.rs crates/graph/src/algo/traversal.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/classic.rs crates/graph/src/generators/hyper.rs crates/graph/src/generators/random.rs crates/graph/src/graph.rs crates/graph/src/hypergraph.rs crates/graph/src/ids.rs crates/graph/src/independent.rs crates/graph/src/io.rs crates/graph/src/ops.rs crates/graph/src/palette.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libpslocal_graph-d5dd9339f3694335.rlib: crates/graph/src/lib.rs crates/graph/src/algo/mod.rs crates/graph/src/algo/cliques.rs crates/graph/src/algo/coloring.rs crates/graph/src/algo/traversal.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/classic.rs crates/graph/src/generators/hyper.rs crates/graph/src/generators/random.rs crates/graph/src/graph.rs crates/graph/src/hypergraph.rs crates/graph/src/ids.rs crates/graph/src/independent.rs crates/graph/src/io.rs crates/graph/src/ops.rs crates/graph/src/palette.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libpslocal_graph-d5dd9339f3694335.rmeta: crates/graph/src/lib.rs crates/graph/src/algo/mod.rs crates/graph/src/algo/cliques.rs crates/graph/src/algo/coloring.rs crates/graph/src/algo/traversal.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/classic.rs crates/graph/src/generators/hyper.rs crates/graph/src/generators/random.rs crates/graph/src/graph.rs crates/graph/src/hypergraph.rs crates/graph/src/ids.rs crates/graph/src/independent.rs crates/graph/src/io.rs crates/graph/src/ops.rs crates/graph/src/palette.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/algo/mod.rs:
crates/graph/src/algo/cliques.rs:
crates/graph/src/algo/coloring.rs:
crates/graph/src/algo/traversal.rs:
crates/graph/src/error.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/classic.rs:
crates/graph/src/generators/hyper.rs:
crates/graph/src/generators/random.rs:
crates/graph/src/graph.rs:
crates/graph/src/hypergraph.rs:
crates/graph/src/ids.rs:
crates/graph/src/independent.rs:
crates/graph/src/io.rs:
crates/graph/src/ops.rs:
crates/graph/src/palette.rs:
crates/graph/src/stats.rs:
