/root/repo/target/debug/deps/exp_t4_phase_bound-c98b2ff66d60fdd9.d: crates/bench/src/bin/exp_t4_phase_bound.rs Cargo.toml

/root/repo/target/debug/deps/libexp_t4_phase_bound-c98b2ff66d60fdd9.rmeta: crates/bench/src/bin/exp_t4_phase_bound.rs Cargo.toml

crates/bench/src/bin/exp_t4_phase_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
