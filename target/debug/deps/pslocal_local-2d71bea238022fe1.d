/root/repo/target/debug/deps/pslocal_local-2d71bea238022fe1.d: crates/local/src/lib.rs crates/local/src/algorithms/mod.rs crates/local/src/algorithms/bfs.rs crates/local/src/algorithms/cole_vishkin.rs crates/local/src/algorithms/coloring.rs crates/local/src/algorithms/luby.rs crates/local/src/algorithms/matching.rs crates/local/src/algorithms/reduce.rs crates/local/src/algorithms/ruling.rs crates/local/src/network.rs crates/local/src/runtime.rs

/root/repo/target/debug/deps/libpslocal_local-2d71bea238022fe1.rlib: crates/local/src/lib.rs crates/local/src/algorithms/mod.rs crates/local/src/algorithms/bfs.rs crates/local/src/algorithms/cole_vishkin.rs crates/local/src/algorithms/coloring.rs crates/local/src/algorithms/luby.rs crates/local/src/algorithms/matching.rs crates/local/src/algorithms/reduce.rs crates/local/src/algorithms/ruling.rs crates/local/src/network.rs crates/local/src/runtime.rs

/root/repo/target/debug/deps/libpslocal_local-2d71bea238022fe1.rmeta: crates/local/src/lib.rs crates/local/src/algorithms/mod.rs crates/local/src/algorithms/bfs.rs crates/local/src/algorithms/cole_vishkin.rs crates/local/src/algorithms/coloring.rs crates/local/src/algorithms/luby.rs crates/local/src/algorithms/matching.rs crates/local/src/algorithms/reduce.rs crates/local/src/algorithms/ruling.rs crates/local/src/network.rs crates/local/src/runtime.rs

crates/local/src/lib.rs:
crates/local/src/algorithms/mod.rs:
crates/local/src/algorithms/bfs.rs:
crates/local/src/algorithms/cole_vishkin.rs:
crates/local/src/algorithms/coloring.rs:
crates/local/src/algorithms/luby.rs:
crates/local/src/algorithms/matching.rs:
crates/local/src/algorithms/reduce.rs:
crates/local/src/algorithms/ruling.rs:
crates/local/src/network.rs:
crates/local/src/runtime.rs:
