/root/repo/target/debug/deps/exp_f1_decay-9d243af4792dd809.d: crates/bench/src/bin/exp_f1_decay.rs

/root/repo/target/debug/deps/exp_f1_decay-9d243af4792dd809: crates/bench/src/bin/exp_f1_decay.rs

crates/bench/src/bin/exp_f1_decay.rs:
