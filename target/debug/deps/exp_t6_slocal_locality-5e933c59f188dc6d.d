/root/repo/target/debug/deps/exp_t6_slocal_locality-5e933c59f188dc6d.d: crates/bench/src/bin/exp_t6_slocal_locality.rs

/root/repo/target/debug/deps/exp_t6_slocal_locality-5e933c59f188dc6d: crates/bench/src/bin/exp_t6_slocal_locality.rs

crates/bench/src/bin/exp_t6_slocal_locality.rs:
