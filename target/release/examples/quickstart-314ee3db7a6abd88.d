/root/repo/target/release/examples/quickstart-314ee3db7a6abd88.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-314ee3db7a6abd88: examples/quickstart.rs

examples/quickstart.rs:
