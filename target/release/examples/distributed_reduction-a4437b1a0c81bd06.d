/root/repo/target/release/examples/distributed_reduction-a4437b1a0c81bd06.d: examples/distributed_reduction.rs

/root/repo/target/release/examples/distributed_reduction-a4437b1a0c81bd06: examples/distributed_reduction.rs

examples/distributed_reduction.rs:
