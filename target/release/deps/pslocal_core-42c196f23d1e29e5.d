/root/repo/target/release/deps/pslocal_core-42c196f23d1e29e5.d: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

/root/repo/target/release/deps/libpslocal_core-42c196f23d1e29e5.rlib: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

/root/repo/target/release/deps/libpslocal_core-42c196f23d1e29e5.rmeta: crates/core/src/lib.rs crates/core/src/completeness.rs crates/core/src/conflict_graph.rs crates/core/src/containment.rs crates/core/src/correspondence.rs crates/core/src/distributed.rs crates/core/src/reduction.rs crates/core/src/resilient.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/completeness.rs:
crates/core/src/conflict_graph.rs:
crates/core/src/containment.rs:
crates/core/src/correspondence.rs:
crates/core/src/distributed.rs:
crates/core/src/reduction.rs:
crates/core/src/resilient.rs:
crates/core/src/simulation.rs:
