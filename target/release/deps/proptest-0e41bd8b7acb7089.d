/root/repo/target/release/deps/proptest-0e41bd8b7acb7089.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0e41bd8b7acb7089.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0e41bd8b7acb7089.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
