/root/repo/target/release/deps/pslocal_slocal-9a78d4eb43d3b626.d: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

/root/repo/target/release/deps/libpslocal_slocal-9a78d4eb43d3b626.rlib: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

/root/repo/target/release/deps/libpslocal_slocal-9a78d4eb43d3b626.rmeta: crates/slocal/src/lib.rs crates/slocal/src/algorithms.rs crates/slocal/src/checkable.rs crates/slocal/src/decomposition.rs crates/slocal/src/problems.rs crates/slocal/src/runtime.rs crates/slocal/src/simulate.rs crates/slocal/src/view.rs

crates/slocal/src/lib.rs:
crates/slocal/src/algorithms.rs:
crates/slocal/src/checkable.rs:
crates/slocal/src/decomposition.rs:
crates/slocal/src/problems.rs:
crates/slocal/src/runtime.rs:
crates/slocal/src/simulate.rs:
crates/slocal/src/view.rs:
