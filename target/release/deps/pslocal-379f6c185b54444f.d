/root/repo/target/release/deps/pslocal-379f6c185b54444f.d: src/bin/pslocal.rs

/root/repo/target/release/deps/pslocal-379f6c185b54444f: src/bin/pslocal.rs

src/bin/pslocal.rs:
