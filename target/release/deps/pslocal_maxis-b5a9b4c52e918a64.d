/root/repo/target/release/deps/pslocal_maxis-b5a9b4c52e918a64.d: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

/root/repo/target/release/deps/libpslocal_maxis-b5a9b4c52e918a64.rlib: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

/root/repo/target/release/deps/libpslocal_maxis-b5a9b4c52e918a64.rmeta: crates/maxis/src/lib.rs crates/maxis/src/adversarial.rs crates/maxis/src/bounds.rs crates/maxis/src/clique_removal.rs crates/maxis/src/decomposition.rs crates/maxis/src/exact.rs crates/maxis/src/faulty.rs crates/maxis/src/greedy.rs crates/maxis/src/local_search.rs crates/maxis/src/luby.rs crates/maxis/src/oracle.rs

crates/maxis/src/lib.rs:
crates/maxis/src/adversarial.rs:
crates/maxis/src/bounds.rs:
crates/maxis/src/clique_removal.rs:
crates/maxis/src/decomposition.rs:
crates/maxis/src/exact.rs:
crates/maxis/src/faulty.rs:
crates/maxis/src/greedy.rs:
crates/maxis/src/local_search.rs:
crates/maxis/src/luby.rs:
crates/maxis/src/oracle.rs:
