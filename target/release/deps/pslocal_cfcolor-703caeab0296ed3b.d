/root/repo/target/release/deps/pslocal_cfcolor-703caeab0296ed3b.d: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

/root/repo/target/release/deps/libpslocal_cfcolor-703caeab0296ed3b.rlib: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

/root/repo/target/release/deps/libpslocal_cfcolor-703caeab0296ed3b.rmeta: crates/cfcolor/src/lib.rs crates/cfcolor/src/checker.rs crates/cfcolor/src/greedy.rs crates/cfcolor/src/interval.rs crates/cfcolor/src/multicoloring.rs crates/cfcolor/src/problem.rs crates/cfcolor/src/slocal_cf.rs crates/cfcolor/src/unique_max.rs

crates/cfcolor/src/lib.rs:
crates/cfcolor/src/checker.rs:
crates/cfcolor/src/greedy.rs:
crates/cfcolor/src/interval.rs:
crates/cfcolor/src/multicoloring.rs:
crates/cfcolor/src/problem.rs:
crates/cfcolor/src/slocal_cf.rs:
crates/cfcolor/src/unique_max.rs:
