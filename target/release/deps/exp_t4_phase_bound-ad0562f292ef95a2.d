/root/repo/target/release/deps/exp_t4_phase_bound-ad0562f292ef95a2.d: crates/bench/src/bin/exp_t4_phase_bound.rs

/root/repo/target/release/deps/exp_t4_phase_bound-ad0562f292ef95a2: crates/bench/src/bin/exp_t4_phase_bound.rs

crates/bench/src/bin/exp_t4_phase_bound.rs:
