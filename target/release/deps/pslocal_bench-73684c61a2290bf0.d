/root/repo/target/release/deps/pslocal_bench-73684c61a2290bf0.d: crates/bench/src/lib.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpslocal_bench-73684c61a2290bf0.rlib: crates/bench/src/lib.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpslocal_bench-73684c61a2290bf0.rmeta: crates/bench/src/lib.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
