/root/repo/target/release/deps/rand-fd47d27c55934f40.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-fd47d27c55934f40.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-fd47d27c55934f40.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
