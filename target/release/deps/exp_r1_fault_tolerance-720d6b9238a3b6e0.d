/root/repo/target/release/deps/exp_r1_fault_tolerance-720d6b9238a3b6e0.d: crates/bench/src/bin/exp_r1_fault_tolerance.rs

/root/repo/target/release/deps/exp_r1_fault_tolerance-720d6b9238a3b6e0: crates/bench/src/bin/exp_r1_fault_tolerance.rs

crates/bench/src/bin/exp_r1_fault_tolerance.rs:
