/root/repo/target/release/deps/pslocal-1c35edb1e84a1d8d.d: src/lib.rs

/root/repo/target/release/deps/libpslocal-1c35edb1e84a1d8d.rlib: src/lib.rs

/root/repo/target/release/deps/libpslocal-1c35edb1e84a1d8d.rmeta: src/lib.rs

src/lib.rs:
